package meander

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// typicalSpec is a representative supply-channel meander problem:
// 225 µm wide channel, 0.5 mm spacing, 5 mm offset, 4 mm box.
func typicalSpec(target float64) Spec {
	return Spec{
		Height:       5e-3,
		TargetLength: target,
		ChannelWidth: 225e-6,
		Spacing:      0.5e-3,
		MaxWidth:     4e-3,
	}
}

func TestStraightChannel(t *testing.T) {
	s := typicalSpec(5e-3)
	r, err := Synthesize(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.Legs != 0 || r.EndX != 0 {
		t.Fatalf("straight channel expected, got legs=%d endX=%g", r.Legs, r.EndX)
	}
	if len(r.Path.Points) != 2 {
		t.Fatalf("straight channel should be a single segment, got %d points", len(r.Path.Points))
	}
	if math.Abs(r.Length-5e-3) > 1e-12 {
		t.Fatalf("length %g", r.Length)
	}
}

func TestExactLengthAcrossRange(t *testing.T) {
	// The synthesizer must achieve the target exactly over a dense
	// range of targets — no quantization dead zones.
	base := typicalSpec(0)
	maxLen := MaxLength(base)
	for i := 0; i <= 400; i++ {
		target := base.Height + (maxLen-base.Height)*float64(i)/400
		s := base
		s.TargetLength = target
		r, err := Synthesize(s)
		if err != nil {
			t.Fatalf("target %g: %v", target, err)
		}
		if math.Abs(r.Length-target) > 1e-9*target {
			t.Fatalf("target %g: achieved %g", target, r.Length)
		}
	}
}

func TestPathInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := Spec{
			Height:       (2 + rng.Float64()*8) * 1e-3,
			ChannelWidth: (100 + rng.Float64()*400) * 1e-6,
			Spacing:      (0.3 + rng.Float64()*1.2) * 1e-3,
			MaxWidth:     (1 + rng.Float64()*5) * 1e-3,
		}
		capacity := MaxLength(s)
		s.TargetLength = s.Height + rng.Float64()*(capacity-s.Height)*0.95
		r, err := Synthesize(s)
		if err != nil {
			// Levels near capacity may be infeasible when the terminal
			// run needs its own level; only accept ErrDoesNotFit.
			return errors.Is(err, ErrDoesNotFit)
		}
		// Invariants: starts at origin, ends on the feed line, stays in
		// the box, rectilinear, not self-intersecting, exact length.
		pts := r.Path.Points
		if pts[0] != (struct{ X, Y float64 }{0, 0}) && (pts[0].X != 0 || pts[0].Y != 0) {
			return false
		}
		last := pts[len(pts)-1]
		//ooclint:ignore floatcmp generated endpoints copy spec coordinates verbatim
		if last.Y != s.Height || last.X < 0 || last.X > s.MaxWidth+1e-15 {
			return false
		}
		if !r.Path.IsRectilinear() || r.Path.SelfIntersects() {
			return false
		}
		if err := r.Path.Validate(); err != nil {
			return false
		}
		for _, p := range pts {
			if p.X < -1e-15 || p.X > s.MaxWidth+1e-12 || p.Y < -1e-15 || p.Y > s.Height+1e-15 {
				return false
			}
		}
		return math.Abs(r.Length-s.TargetLength) <= 1e-9*s.TargetLength
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRunSpacingRespectsPitch(t *testing.T) {
	s := typicalSpec(20e-3) // long meander, several runs
	r, err := Synthesize(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.Legs < 2 {
		t.Fatalf("expected a real serpentine, got %d legs", r.Legs)
	}
	// Collect distinct horizontal run levels and check pitch.
	var levels []float64
	pts := r.Path.Points
	for i := 1; i < len(pts); i++ {
		//ooclint:ignore floatcmp structural equality of copied coordinates
		if pts[i].Y == pts[i-1].Y && pts[i].X != pts[i-1].X {
			levels = append(levels, pts[i].Y)
		}
	}
	pitch := s.ChannelWidth + s.Spacing
	for i := 1; i < len(levels); i++ {
		if d := levels[i] - levels[i-1]; d < pitch-1e-12 {
			t.Fatalf("run levels %d,%d only %g apart (pitch %g)", i-1, i, d, pitch)
		}
	}
	// Margins to the module row and the feed line.
	margin := s.ChannelWidth/2 + s.Spacing
	if levels[0] < margin-1e-12 {
		t.Fatalf("first run %g violates bottom margin %g", levels[0], margin)
	}
	if levels[len(levels)-1] > s.Height-margin+1e-12 {
		t.Fatalf("last run violates top margin")
	}
}

func TestAmplitudeRespectsDesignRules(t *testing.T) {
	s := typicalSpec(12e-3)
	r, err := Synthesize(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.Legs == 0 {
		t.Skip("no serpentine runs for this target")
	}
	// All x coordinates are either 0 or the amplitude (plus the tap);
	// the amplitude must be ≥ pitch.
	var amp float64
	for _, p := range r.Path.Points {
		if p.X > amp {
			amp = p.X
		}
	}
	if amp < s.ChannelWidth+s.Spacing {
		t.Fatalf("amplitude %g below pitch", amp)
	}
	if amp > s.MaxWidth+1e-12 {
		t.Fatalf("amplitude %g exceeds box width %g", amp, s.MaxWidth)
	}
}

func TestDoesNotFit(t *testing.T) {
	s := typicalSpec(0)
	s.TargetLength = MaxLength(s) * 3
	_, err := Synthesize(s)
	if !errors.Is(err, ErrDoesNotFit) {
		t.Fatalf("want ErrDoesNotFit, got %v", err)
	}
}

func TestGrowingTheBoxFixesDoesNotFit(t *testing.T) {
	// Offset correction's contract: when a meander does not fit,
	// increasing Height (the offset) makes it fit.
	s := typicalSpec(0)
	s.TargetLength = MaxLength(s) * 1.5
	if _, err := Synthesize(s); !errors.Is(err, ErrDoesNotFit) {
		t.Fatal("expected initial failure")
	}
	for grow := 0; grow < 50; grow++ {
		s.Height *= 1.25
		if s.TargetLength < s.Height {
			s.TargetLength = s.Height
		}
		if r, err := Synthesize(s); err == nil {
			if math.Abs(r.Length-s.TargetLength) > 1e-9*s.TargetLength {
				t.Fatalf("length mismatch after growth")
			}
			return
		}
	}
	t.Fatal("growing the box never made the meander fit")
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{Height: 0, TargetLength: 1, ChannelWidth: 1e-4, Spacing: 1e-4, MaxWidth: 1e-3},
		{Height: 1e-3, TargetLength: 1e-3, ChannelWidth: 0, Spacing: 1e-4, MaxWidth: 1e-3},
		{Height: 1e-3, TargetLength: 1e-3, ChannelWidth: 1e-4, Spacing: -1, MaxWidth: 1e-3},
		{Height: 1e-3, TargetLength: 1e-3, ChannelWidth: 1e-4, Spacing: 1e-4, MaxWidth: 0},
		{Height: 2e-3, TargetLength: 1e-3, ChannelWidth: 1e-4, Spacing: 1e-4, MaxWidth: 1e-3}, // target < span
	}
	for i, s := range bad {
		if _, err := Synthesize(s); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
}

func TestMaxLengthIsAchievableApproximately(t *testing.T) {
	// 90 % of the reported capacity must be synthesizable.
	s := typicalSpec(0)
	s.TargetLength = s.Height + (MaxLength(s)-s.Height)*0.9
	if _, err := Synthesize(s); err != nil {
		t.Fatalf("90%% of capacity not achievable: %v", err)
	}
}

func TestTerminalRunOnlySmallExtra(t *testing.T) {
	// A tiny extra length is realized by sliding the tap, not by a
	// full serpentine.
	s := typicalSpec(5.3e-3) // 0.3 mm extra, below one pitch*2
	r, err := Synthesize(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.Legs != 0 {
		t.Fatalf("expected terminal-run-only route, got %d legs", r.Legs)
	}
	if math.Abs(r.EndX-0.3e-3) > 1e-12 {
		t.Fatalf("tap at %g, want 0.3 mm", r.EndX)
	}
}

func TestNarrowBoxFallsBackToTerminalRun(t *testing.T) {
	s := Spec{
		Height:       5e-3,
		TargetLength: 5.2e-3,
		ChannelWidth: 225e-6,
		Spacing:      0.5e-3,
		MaxWidth:     0.4e-3, // below one pitch
	}
	r, err := Synthesize(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.Legs != 0 || math.Abs(r.Length-5.2e-3) > 1e-12 {
		t.Fatalf("legs=%d length=%g", r.Legs, r.Length)
	}
	s.TargetLength = 6e-3 // 1 mm extra cannot fit in a 0.4 mm box
	if _, err := Synthesize(s); !errors.Is(err, ErrDoesNotFit) {
		t.Fatalf("want ErrDoesNotFit, got %v", err)
	}
}

func TestBendsCountedForValidator(t *testing.T) {
	s := typicalSpec(25e-3)
	r, err := Synthesize(s)
	if err != nil {
		t.Fatal(err)
	}
	bends := r.Path.Bends()
	// A serpentine with n legs has 2 bends per leg (in and out).
	if bends < 2*r.Legs {
		t.Fatalf("bends %d < 2×legs %d", bends, r.Legs)
	}
}

// TestPinnedTapExactLengths: with a pinned tap (the mode the designer
// uses) every target with extra ≥ EndX is exactly realizable, and the
// tap lands exactly at EndX.
func TestPinnedTapExactLengths(t *testing.T) {
	base := Spec{
		Height:       8e-3,
		ChannelWidth: 225e-6,
		Spacing:      1e-3,
		MaxWidth:     5e-3,
		Margin:       1.6e-3,
		EndX:         1.225e-3, // one pitch
	}
	maxLen := MaxLength(base)
	for i := 0; i <= 300; i++ {
		s := base
		s.TargetLength = s.Height + s.EndX + (maxLen-s.Height-s.EndX)*float64(i)/300*0.85
		r, err := Synthesize(s)
		if err != nil {
			t.Fatalf("target %g: %v", s.TargetLength, err)
		}
		if math.Abs(r.Length-s.TargetLength) > 1e-9*s.TargetLength {
			t.Fatalf("target %g: achieved %g", s.TargetLength, r.Length)
		}
		if math.Abs(r.EndX-s.EndX) > 1e-12 {
			t.Fatalf("target %g: tap at %g, want pinned %g", s.TargetLength, r.EndX, s.EndX)
		}
		if r.Path.SelfIntersects() {
			t.Fatalf("target %g: self-intersection", s.TargetLength)
		}
	}
}

func TestPinnedTapValidation(t *testing.T) {
	s := Spec{
		Height: 5e-3, TargetLength: 5e-3, ChannelWidth: 225e-6,
		Spacing: 1e-3, MaxWidth: 4e-3, EndX: 1e-3,
	}
	// Target below Height+EndX is unrealizable with a pinned tap.
	if _, err := Synthesize(s); err == nil {
		t.Fatal("target below minimum accepted for pinned tap")
	}
	s.EndX = -1
	if _, err := Synthesize(s); err == nil {
		t.Fatal("negative EndX accepted")
	}
	s.EndX = 10e-3 // beyond the box
	if _, err := Synthesize(s); err == nil {
		t.Fatal("EndX outside box accepted")
	}
}

// TestPinnedOddRunsOutward: odd run counts with a < EndX use the
// outward terminal branch (a < E requires E > pitch).
func TestPinnedOddRunsOutward(t *testing.T) {
	s := Spec{
		Height:       8e-3,
		ChannelWidth: 225e-6,
		Spacing:      0.5e-3,
		MaxWidth:     5e-3,
		Margin:       1.6e-3,
		EndX:         2.5e-3, // well above pitch (0.725 mm)
	}
	// Sweep a fine range; some targets exercise the a < E branch.
	for i := 0; i <= 200; i++ {
		s.TargetLength = s.Height + s.EndX + float64(i)*0.1e-3
		r, err := Synthesize(s)
		if err != nil {
			continue // capacity edge is fine
		}
		if math.Abs(r.Length-s.TargetLength) > 1e-9*s.TargetLength {
			t.Fatalf("target %g: achieved %g", s.TargetLength, r.Length)
		}
		if math.Abs(r.EndX-s.EndX) > 1e-12 {
			t.Fatalf("tap not pinned at %g", s.EndX)
		}
	}
}

func TestMaxLengthConsistency(t *testing.T) {
	s := Spec{
		Height: 6e-3, ChannelWidth: 225e-6, Spacing: 1e-3,
		MaxWidth: 4e-3, Margin: 1.6e-3,
	}
	capacity := MaxLength(s)
	if capacity <= s.Height {
		t.Fatal("capacity must exceed the straight span")
	}
	// Beyond capacity always fails.
	s.TargetLength = capacity * 1.3
	if _, err := Synthesize(s); !errors.Is(err, ErrDoesNotFit) {
		t.Fatalf("beyond capacity: %v", err)
	}
}
