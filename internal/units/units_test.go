package units

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, rel float64) bool {
	if a == b {
		return true
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= rel*den
}

func TestLengthConversions(t *testing.T) {
	cases := []struct {
		name string
		got  float64
		want float64
	}{
		{"mm->m", Millimetres(1).Metres(), 1e-3},
		{"um->m", Micrometres(150).Metres(), 150e-6},
		{"m->mm", Metres(0.5).Millimetres(), 500},
		{"m->um", Metres(89e-6).Micrometres(), 89},
	}
	for _, c := range cases {
		if !almostEqual(c.got, c.want, 1e-12) {
			t.Errorf("%s: got %v want %v", c.name, c.got, c.want)
		}
	}
}

func TestLengthRoundTrip(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		return almostEqual(Micrometres(v).Micrometres(), v, 1e-12) &&
			almostEqual(Millimetres(v).Millimetres(), v, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFlowRateConversions(t *testing.T) {
	// Liver blood flow in the paper: 1450 mL/min.
	q := MillilitresPerMinute(1450)
	want := 1450e-6 / 60.0
	if !almostEqual(q.CubicMetresPerSecond(), want, 1e-12) {
		t.Fatalf("1450 mL/min = %g m3/s, want %g", q.CubicMetresPerSecond(), want)
	}
	if !almostEqual(q.MillilitresPerMinute(), 1450, 1e-12) {
		t.Fatalf("round trip failed: %g", q.MillilitresPerMinute())
	}
}

func TestFlowRateRoundTrip(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		return almostEqual(MillilitresPerMinute(v).MillilitresPerMinute(), v, 1e-12) &&
			almostEqual(MicrolitresPerMinute(v).MicrolitresPerMinute(), v, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShearStressDynPerCm2(t *testing.T) {
	// 15 dyn/cm² = 1.5 Pa — the paper's middle shear-stress value.
	s := DynPerCm2(15)
	if !almostEqual(s.Pascals(), 1.5, 1e-12) {
		t.Fatalf("15 dyn/cm2 = %g Pa, want 1.5", s.Pascals())
	}
	if !almostEqual(s.DynPerCm2(), 15, 1e-12) {
		t.Fatalf("round trip: %g", s.DynPerCm2())
	}
}

func TestPressureConversions(t *testing.T) {
	if !almostEqual(Kilopascals(1.2).Pascals(), 1200, 1e-12) {
		t.Error("kPa conversion")
	}
	if !almostEqual(Millibars(10).Pascals(), 1000, 1e-12) {
		t.Error("mbar conversion")
	}
	if !almostEqual(Pascals(250).Millibars(), 2.5, 1e-12) {
		t.Error("Pa->mbar conversion")
	}
}

func TestVolumeConversions(t *testing.T) {
	if !almostEqual(Millilitres(5200).CubicMetres(), 5.2e-3, 1e-12) {
		t.Error("blood volume 5200 mL should be 5.2e-3 m3")
	}
	if !almostEqual(Microlitres(1).CubicMetres(), 1e-9, 1e-12) {
		t.Error("1 µL should be 1e-9 m3")
	}
}

func TestMassConversions(t *testing.T) {
	if !almostEqual(Grams(1000).Kilograms(), 1, 1e-12) {
		t.Error("1000 g = 1 kg")
	}
	if !almostEqual(Kilograms(1.4286e-8).Grams(), 1.4286e-5, 1e-12) {
		t.Error("liver module mass conversion")
	}
}

func TestViscosityConversions(t *testing.T) {
	// Culture media viscosities in the paper: 0.72–1.1 cP.
	if !almostEqual(Centipoise(0.72).PascalSeconds(), 7.2e-4, 1e-12) {
		t.Error("0.72 cP = 7.2e-4 Pa·s")
	}
	if !almostEqual(PascalSeconds(9.3e-4).Centipoise(), 0.93, 1e-12) {
		t.Error("9.3e-4 Pa·s = 0.93 cP")
	}
}

func TestHydraulicResistancePressureDrop(t *testing.T) {
	r := PaSecondsPerCubicMetre(2e12)
	q := CubicMetresPerSecond(7.8125e-9)
	dp := r.PressureDrop(q)
	if !almostEqual(dp.Pascals(), 2e12*7.8125e-9, 1e-12) {
		t.Fatalf("ΔP = %g", dp.Pascals())
	}
}

func TestLengthString(t *testing.T) {
	cases := []struct {
		l    Length
		want string
	}{
		{Micrometres(89), "µm"},
		{Millimetres(1.5), "mm"},
		{Metres(2), "m"},
		{Metres(0), "0 m"},
	}
	for _, c := range cases {
		if got := c.l.String(); !strings.Contains(got, c.want) {
			t.Errorf("String(%v) = %q, want to contain %q", float64(c.l), got, c.want)
		}
	}
}

func TestFlowRateString(t *testing.T) {
	q := CubicMetresPerSecond(7.8125e-9)
	s := q.String()
	if !strings.Contains(s, "µL/min") {
		t.Errorf("String() = %q", s)
	}
}

func TestAreaAndVolumeAccessors(t *testing.T) {
	a := SquareMetres(2e-6)
	if !almostEqual(a.SquareMillimetres(), 2, 1e-12) {
		t.Fatalf("area mm²: %g", a.SquareMillimetres())
	}
	v := CubicMetres(1e-9)
	if !almostEqual(v.Microlitres(), 1, 1e-12) {
		t.Fatalf("volume µL: %g", v.Microlitres())
	}
	if !almostEqual(GramsPerMillilitre(1.06).KilogramsPerCubicMetre(), 1060, 1e-12) {
		t.Fatal("density conversion")
	}
}

func TestVelocityAccessors(t *testing.T) {
	v := MetresPerSecond(0.052)
	if math.Abs(v.MillimetresPerSecond()-52) > 1e-9 {
		t.Fatalf("velocity mm/s: %g", v.MillimetresPerSecond())
	}
}

func TestMicrolitresPerHour(t *testing.T) {
	q := MicrolitresPerHour(3600)
	if math.Abs(q.CubicMetresPerSecond()-1e-9) > 1e-21 {
		t.Fatalf("µL/h conversion: %g", q.CubicMetresPerSecond())
	}
}

func TestKilopascalsAccessor(t *testing.T) {
	if !almostEqual(Pascals(5860).Kilopascals(), 5.86, 1e-12) {
		t.Fatal("kPa accessor")
	}
}

func TestResistanceAccessor(t *testing.T) {
	r := PaSecondsPerCubicMetre(3e12)
	if !almostEqual(r.PaSecondsPerCubicMetre(), 3e12, 1e-12) {
		t.Fatal("resistance accessor")
	}
}
