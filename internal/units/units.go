// Package units provides typed SI quantities for the OoC designer.
//
// All quantities are stored in SI base units (metres, kilograms, seconds,
// pascals, …) as float64. The distinct types prevent the classic
// microfluidics bug of mixing µm, mm and m, or mL/min and m³/s, without
// paying any runtime cost. Convenience constructors and accessors handle
// the unit conversions that appear throughout the paper (µm, mm, mL/min,
// dyn/cm², …).
package units

import (
	"fmt"
	"math"
)

// Length is a length in metres.
type Length float64

// Common length constructors.
func Metres(v float64) Length      { return Length(v) }
func Millimetres(v float64) Length { return Length(v * 1e-3) }
func Micrometres(v float64) Length { return Length(v * 1e-6) }

// Accessors.
func (l Length) Metres() float64      { return float64(l) }
func (l Length) Millimetres() float64 { return float64(l) * 1e3 }
func (l Length) Micrometres() float64 { return float64(l) * 1e6 }

// String formats the length with an auto-selected prefix.
func (l Length) String() string {
	a := math.Abs(float64(l))
	switch {
	case a == 0:
		return "0 m"
	case a < 1e-3:
		return fmt.Sprintf("%.4g µm", l.Micrometres())
	case a < 1:
		return fmt.Sprintf("%.4g mm", l.Millimetres())
	default:
		return fmt.Sprintf("%.4g m", l.Metres())
	}
}

// Area is an area in square metres.
type Area float64

func SquareMetres(v float64) Area         { return Area(v) }
func (a Area) SquareMetres() float64      { return float64(a) }
func (a Area) SquareMillimetres() float64 { return float64(a) * 1e6 }

// Volume is a volume in cubic metres.
type Volume float64

func CubicMetres(v float64) Volume { return Volume(v) }
func Millilitres(v float64) Volume { return Volume(v * 1e-6) }
func Microlitres(v float64) Volume { return Volume(v * 1e-9) }

func (v Volume) CubicMetres() float64 { return float64(v) }
func (v Volume) Millilitres() float64 { return float64(v) * 1e6 }
func (v Volume) Microlitres() float64 { return float64(v) * 1e9 }

// Mass is a mass in kilograms.
type Mass float64

func Kilograms(v float64) Mass  { return Mass(v) }
func Grams(v float64) Mass      { return Mass(v * 1e-3) }
func Milligrams(v float64) Mass { return Mass(v * 1e-6) }

func (m Mass) Kilograms() float64 { return float64(m) }
func (m Mass) Grams() float64     { return float64(m) * 1e3 }

// Pressure is a pressure in pascals.
type Pressure float64

func Pascals(v float64) Pressure     { return Pressure(v) }
func Kilopascals(v float64) Pressure { return Pressure(v * 1e3) }
func Millibars(v float64) Pressure   { return Pressure(v * 100) }

func (p Pressure) Pascals() float64     { return float64(p) }
func (p Pressure) Kilopascals() float64 { return float64(p) * 1e-3 }
func (p Pressure) Millibars() float64   { return float64(p) / 100 }

// ShearStress is a wall shear stress in pascals. It is kept distinct
// from Pressure because the two are never interchangeable in the design
// equations (Eq. 3 vs. Eq. 7).
type ShearStress float64

func PascalsShear(v float64) ShearStress { return ShearStress(v) }

// DynPerCm2 constructs a shear stress from dyn/cm² (the unit common in
// the endothelial-biology literature; 1 dyn/cm² = 0.1 Pa).
func DynPerCm2(v float64) ShearStress { return ShearStress(v * 0.1) }

func (s ShearStress) Pascals() float64   { return float64(s) }
func (s ShearStress) DynPerCm2() float64 { return float64(s) * 10 }

// FlowRate is a volumetric flow rate in m³/s.
type FlowRate float64

func CubicMetresPerSecond(v float64) FlowRate { return FlowRate(v) }
func MillilitresPerMinute(v float64) FlowRate { return FlowRate(v * 1e-6 / 60) }
func MicrolitresPerMinute(v float64) FlowRate { return FlowRate(v * 1e-9 / 60) }
func MicrolitresPerHour(v float64) FlowRate   { return FlowRate(v * 1e-9 / 3600) }

func (q FlowRate) CubicMetresPerSecond() float64 { return float64(q) }
func (q FlowRate) MillilitresPerMinute() float64 { return float64(q) * 60 * 1e6 }
func (q FlowRate) MicrolitresPerMinute() float64 { return float64(q) * 60 * 1e9 }

// String formats the flow rate in µL/min, the natural scale for OoC.
func (q FlowRate) String() string {
	return fmt.Sprintf("%.4g µL/min", q.MicrolitresPerMinute())
}

// Viscosity is a dynamic viscosity in Pa·s.
type Viscosity float64

func PascalSeconds(v float64) Viscosity { return Viscosity(v) }
func Centipoise(v float64) Viscosity    { return Viscosity(v * 1e-3) }

func (mu Viscosity) PascalSeconds() float64 { return float64(mu) }
func (mu Viscosity) Centipoise() float64    { return float64(mu) * 1e3 }

// Density is a mass density in kg/m³.
type Density float64

func KilogramsPerCubicMetre(v float64) Density { return Density(v) }
func GramsPerMillilitre(v float64) Density     { return Density(v * 1e3) }

func (d Density) KilogramsPerCubicMetre() float64 { return float64(d) }

// HydraulicResistance is a hydraulic resistance in Pa·s/m³
// (pressure drop per unit flow rate, Eq. 7).
type HydraulicResistance float64

func PaSecondsPerCubicMetre(v float64) HydraulicResistance {
	return HydraulicResistance(v)
}

func (r HydraulicResistance) PaSecondsPerCubicMetre() float64 { return float64(r) }

// PressureDrop returns the pressure gradient ΔP = R·Q across a channel
// with this resistance at flow rate q (Hagen–Poiseuille, Eq. 7).
func (r HydraulicResistance) PressureDrop(q FlowRate) Pressure {
	return Pressure(float64(r) * float64(q))
}

// Velocity is a linear velocity in m/s.
type Velocity float64

func MetresPerSecond(v float64) Velocity         { return Velocity(v) }
func (v Velocity) MetresPerSecond() float64      { return float64(v) }
func (v Velocity) MillimetresPerSecond() float64 { return float64(v) * 1e3 }
