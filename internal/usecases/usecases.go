// Package usecases defines the eight OoC evaluation use cases of the
// paper (Sec. IV) and the parameter sweep applied to each: four
// real-world-inspired chips (male_simple, female_simple,
// male_gi_tract, male_kidney) and four generic liver chips with 5–8
// modules (generic1–generic4), each instantiated over viscosity,
// shear-stress and channel-spacing grids.
package usecases

import (
	"fmt"

	"ooc/internal/core"
	"ooc/internal/fluid"
	"ooc/internal/physio"
	"ooc/internal/units"
)

// defaultOrganismMass is M_b for all evaluation chips (the scale used
// by the paper's Example 1: a 1 mg organism).
const defaultOrganismMass units.Mass = 1e-6

// UseCase is a named specification builder.
type UseCase struct {
	Name string
	// ModuleCount is the number of organ modules (Table I column 2).
	ModuleCount int
	// Build returns a fresh specification with default fluid, shear
	// stress and geometry; the sweep overrides those.
	Build func() core.Spec
}

func organChip(name string, ref func() physio.Reference, organs []physio.OrganID) UseCase {
	return UseCase{
		Name:        name,
		ModuleCount: len(organs),
		Build: func() core.Spec {
			spec := core.Spec{
				Name:         name,
				Reference:    ref(),
				OrganismMass: defaultOrganismMass,
				Fluid:        fluid.MediumLowViscosity,
				ShearStress:  units.PascalsShear(1.5),
			}
			for _, o := range organs {
				spec.Modules = append(spec.Modules, core.ModuleSpec{Organ: o, Kind: core.Layered})
			}
			return spec
		},
	}
}

func genericChip(name string, modules int) UseCase {
	return UseCase{
		Name:        name,
		ModuleCount: modules,
		Build: func() core.Spec {
			spec := core.Spec{
				Name:         name,
				Reference:    physio.StandardMale(),
				OrganismMass: defaultOrganismMass,
				Fluid:        fluid.MediumLowViscosity,
				ShearStress:  units.PascalsShear(1.5),
			}
			for i := 0; i < modules; i++ {
				spec.Modules = append(spec.Modules, core.ModuleSpec{
					Name:  fmt.Sprintf("liver%d", i),
					Organ: physio.Liver,
					Kind:  core.Layered,
				})
			}
			return spec
		},
	}
}

// All returns the eight paper use cases in Table I order.
func All() []UseCase {
	return []UseCase{
		// Barrier tissue (lung or GI tract) for drug uptake, the liver
		// for metabolism, the brain for species differences; the kidney
		// case adds nephrotoxicity screening.
		organChip("male_simple", physio.StandardMale,
			[]physio.OrganID{physio.Lung, physio.Liver, physio.Brain}),
		organChip("female_simple", physio.StandardFemale,
			[]physio.OrganID{physio.Lung, physio.Liver, physio.Brain}),
		organChip("male_gi_tract", physio.StandardMale,
			[]physio.OrganID{physio.GITract, physio.Liver, physio.Brain}),
		organChip("male_kidney", physio.StandardMale,
			[]physio.OrganID{physio.Lung, physio.Liver, physio.Kidney, physio.Brain}),
		genericChip("generic1", 5),
		genericChip("generic2", 6),
		genericChip("generic3", 7),
		genericChip("generic4", 8),
	}
}

// ByName finds a use case.
func ByName(name string) (UseCase, error) {
	for _, uc := range All() {
		if uc.Name == name {
			return uc, nil
		}
	}
	return UseCase{}, fmt.Errorf("usecases: unknown use case %q", name)
}

// SweepParams is the evaluation parameter grid (Sec. IV).
type SweepParams struct {
	Viscosities []units.Viscosity
	Shears      []units.ShearStress
	Spacings    []units.Length
}

// PaperSweep returns the grid exactly as listed in the paper:
// µ ∈ {7.2e-4, 9.3e-4, 1.1e-3} Pa·s, τ ∈ {1.2, 1.5, 2.0} Pa,
// spacing ∈ {0.5, 1.0, 1.5} mm — 27 instances per use case
// (216 total).
func PaperSweep() SweepParams {
	return SweepParams{
		Viscosities: []units.Viscosity{physio.MediumViscosityLow, physio.MediumViscosityTypical, physio.MediumViscosityHigh},
		Shears:      []units.ShearStress{units.PascalsShear(1.2), units.PascalsShear(1.5), units.PascalsShear(2.0)},
		Spacings:    []units.Length{units.Millimetres(0.5), units.Millimetres(1.0), units.Millimetres(1.5)},
	}
}

// ExtendedSweep adds a fourth spacing value (2.0 mm) so that the total
// instance count matches the 288 designs the paper reports
// (8 × 3 × 3 × 4; the listed 3×3×3 grid only yields 216 — see
// DESIGN.md for the reconstruction note).
func ExtendedSweep() SweepParams {
	p := PaperSweep()
	p.Spacings = append(p.Spacings, units.Millimetres(2.0))
	return p
}

// Instance is one fully parameterized evaluation design.
type Instance struct {
	UseCase string
	Fluid   fluid.Fluid
	Shear   units.ShearStress
	Spacing units.Length
	Spec    core.Spec
}

// Label identifies the instance in logs and reports.
func (in Instance) Label() string {
	return fmt.Sprintf("%s/mu=%.2g/tau=%.2g/sp=%.2gmm",
		in.UseCase, float64(in.Fluid.Viscosity), float64(in.Shear),
		in.Spacing.Millimetres())
}

// fluidFor maps a sweep viscosity onto a culture-medium preset
// (densities after Poon 2022).
func fluidFor(mu units.Viscosity) fluid.Fluid {
	switch {
	case mu <= units.PascalSeconds(8e-4):
		f := fluid.MediumLowViscosity
		f.Viscosity = mu
		return f
	case mu <= units.PascalSeconds(1.0e-3):
		f := fluid.MediumTypical
		f.Viscosity = mu
		return f
	default:
		f := fluid.MediumHighViscosity
		f.Viscosity = mu
		return f
	}
}

// Instances expands use cases over the sweep grid.
func Instances(cases []UseCase, p SweepParams) []Instance {
	var out []Instance
	for _, uc := range cases {
		for _, mu := range p.Viscosities {
			for _, tau := range p.Shears {
				for _, sp := range p.Spacings {
					spec := uc.Build()
					spec.Fluid = fluidFor(mu)
					spec.ShearStress = tau
					spec.Geometry.Spacing = sp
					out = append(out, Instance{
						UseCase: uc.Name,
						Fluid:   spec.Fluid,
						Shear:   tau,
						Spacing: sp,
						Spec:    spec,
					})
				}
			}
		}
	}
	return out
}

// Fig4Instance returns the male_simple instance shown in the paper's
// Fig. 4 (µ = 7.2e-4 Pa·s, τ = 1.5 Pa, spacing 1 mm; intended module
// flow 7.81e-9 m³/s).
func Fig4Instance() Instance {
	uc, _ := ByName("male_simple")
	spec := uc.Build()
	spec.Fluid = fluidFor(physio.MediumViscosityLow)
	spec.ShearStress = units.PascalsShear(1.5)
	spec.Geometry.Spacing = units.Millimetres(1)
	return Instance{
		UseCase: uc.Name,
		Fluid:   spec.Fluid,
		Shear:   units.PascalsShear(1.5),
		Spacing: units.Millimetres(1),
		Spec:    spec,
	}
}
