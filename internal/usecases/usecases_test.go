package usecases

import (
	"strings"
	"testing"

	"ooc/internal/core"
)

func TestAllMatchesTableI(t *testing.T) {
	want := []struct {
		name    string
		modules int
	}{
		{"male_simple", 3},
		{"female_simple", 3},
		{"male_gi_tract", 3},
		{"male_kidney", 4},
		{"generic1", 5},
		{"generic2", 6},
		{"generic3", 7},
		{"generic4", 8},
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("use case count %d, want %d", len(all), len(want))
	}
	for i, w := range want {
		if all[i].Name != w.name || all[i].ModuleCount != w.modules {
			t.Errorf("case %d: %s/%d, want %s/%d", i, all[i].Name, all[i].ModuleCount, w.name, w.modules)
		}
		spec := all[i].Build()
		if len(spec.Modules) != w.modules {
			t.Errorf("%s: built %d modules", w.name, len(spec.Modules))
		}
		if err := spec.Validate(); err != nil {
			t.Errorf("%s: invalid spec: %v", w.name, err)
		}
	}
}

func TestByName(t *testing.T) {
	uc, err := ByName("male_kidney")
	if err != nil || uc.ModuleCount != 4 {
		t.Fatalf("ByName: %v, %d", err, uc.ModuleCount)
	}
	if _, err := ByName("nonexistent"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestSweepCounts(t *testing.T) {
	paper := Instances(All(), PaperSweep())
	if len(paper) != 216 {
		t.Fatalf("paper grid: %d instances, want 216 (8×27)", len(paper))
	}
	ext := Instances(All(), ExtendedSweep())
	if len(ext) != 288 {
		t.Fatalf("extended grid: %d instances, want 288 (the paper's reported count)", len(ext))
	}
}

func TestInstancesParameterized(t *testing.T) {
	in := Instances(All()[:1], PaperSweep())
	seen := map[string]bool{}
	for _, i := range in {
		if seen[i.Label()] {
			t.Fatalf("duplicate instance %s", i.Label())
		}
		seen[i.Label()] = true
		//ooclint:ignore floatcmp sweep fields are copied verbatim into the spec
		if i.Spec.Fluid.Viscosity != i.Fluid.Viscosity {
			t.Fatal("fluid not applied to spec")
		}
		//ooclint:ignore floatcmp sweep fields are copied verbatim into the spec
		if i.Spec.ShearStress != i.Shear {
			t.Fatal("shear not applied")
		}
		//ooclint:ignore floatcmp sweep fields are copied verbatim into the spec
		if i.Spec.Geometry.Spacing != i.Spacing {
			t.Fatal("spacing not applied")
		}
	}
}

func TestFig4Instance(t *testing.T) {
	in := Fig4Instance()
	if in.UseCase != "male_simple" {
		t.Fatalf("use case %s", in.UseCase)
	}
	res, err := core.Derive(in.Spec)
	if err != nil {
		t.Fatal(err)
	}
	// The Fig. 4 intended flow.
	for _, m := range res.Modules {
		q := m.FlowRate.CubicMetresPerSecond()
		if q < 7.81e-9 || q > 7.82e-9 {
			t.Fatalf("module %s intended flow %g, want 7.8125e-9", m.Name, q)
		}
	}
}

func TestFemaleUsesFemaleReference(t *testing.T) {
	uc, err := ByName("female_simple")
	if err != nil {
		t.Fatal(err)
	}
	spec := uc.Build()
	if !strings.Contains(spec.Reference.Name, "female") {
		t.Fatalf("reference %q", spec.Reference.Name)
	}
}

func TestAllInstancesGenerate(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in short mode")
	}
	// Smoke-generate one instance per use case (full grid covered by
	// the benchmark harness).
	for _, uc := range All() {
		spec := uc.Build()
		if _, err := core.Generate(spec); err != nil {
			t.Errorf("%s: %v", uc.Name, err)
		}
	}
}
