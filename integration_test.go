package ooc_test

import (
	"math/rand"
	"strings"
	"testing"

	"ooc"
)

// randomSpec draws a random but well-formed specification from the
// design space the paper's evaluation covers: 1–8 modules from the
// organ catalog (occasionally a custom round tissue), viscosity and
// shear stress inside their physical windows, spacing from the sweep
// range, organism mass around the paper's 1 mg scale.
func randomSpec(rng *rand.Rand) ooc.Spec {
	organs := []ooc.OrganID{
		ooc.Lung, ooc.Liver, ooc.Brain, ooc.Kidney, ooc.GITract,
		ooc.Heart, ooc.Skin, ooc.Spleen, ooc.Pancreas,
	}
	rng.Shuffle(len(organs), func(i, j int) { organs[i], organs[j] = organs[j], organs[i] })
	n := 1 + rng.Intn(6)

	spec := ooc.Spec{
		Name:         "random",
		Reference:    ooc.StandardMale(),
		OrganismMass: ooc.Kilograms(1e-6 * (0.5 + rng.Float64()*4)),
		Fluid:        ooc.MediumTypical,
		ShearStress:  ooc.PascalsShear(1.0 + rng.Float64()),
	}
	if rng.Intn(2) == 0 {
		spec.Reference = ooc.StandardFemale()
	}
	spec.Fluid.Viscosity = ooc.PascalSeconds(7e-4 + rng.Float64()*4e-4)
	spec.Geometry.Spacing = ooc.Millimetres(0.5 + rng.Float64())

	for i := 0; i < n; i++ {
		spec.Modules = append(spec.Modules, ooc.ModuleSpec{
			Organ: organs[i],
			Kind:  ooc.Layered,
		})
	}
	if rng.Intn(3) == 0 {
		// A patient-derived spheroid with a safe radius (< 250 µm).
		spec.Modules = append(spec.Modules, ooc.ModuleSpec{
			Name:      "spheroid",
			Kind:      ooc.Round,
			Mass:      ooc.Kilograms(1e-9 * (1 + rng.Float64()*40)),
			Perfusion: 0.05 + rng.Float64()*0.6,
		})
	}
	return spec
}

// TestRandomSpecsEndToEnd is the whole-pipeline property test: every
// well-formed random specification must generate a design that passes
// the designer's invariants, validates in a sane band, survives the
// design review without errors, and round-trips through JSON.
func TestRandomSpecsEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	const trials = 40
	generated := 0
	for trial := 0; trial < trials; trial++ {
		spec := randomSpec(rng)
		d, err := ooc.Generate(spec)
		if err != nil {
			// Some random combinations are legitimately infeasible
			// (e.g. a spheroid radius pushing the channel width below
			// the uniform height); those must fail loudly and
			// explainably, never silently.
			if !strings.Contains(err.Error(), "core:") {
				t.Fatalf("trial %d: unexplained failure: %v", trial, err)
			}
			continue
		}
		generated++

		if r := d.KVLResidual(); r > 1e-6 {
			t.Fatalf("trial %d: KVL residual %g", trial, r)
		}
		if v := d.DesignRuleCheck(); len(v) != 0 {
			t.Fatalf("trial %d: DRC violations: %v", trial, v)
		}
		rep, err := ooc.Validate(d, ooc.ValidationOptions{})
		if err != nil {
			t.Fatalf("trial %d: validate: %v", trial, err)
		}
		if rep.MaxFlowDeviation > 0.30 {
			t.Fatalf("trial %d: flow deviation %.1f%% out of band", trial, rep.MaxFlowDeviation*100)
		}
		rev, err := ooc.ReviewDesign(d)
		if err != nil {
			t.Fatalf("trial %d: review: %v", trial, err)
		}
		if !rev.OK() {
			for _, f := range rev.Findings {
				if f.Severity == ooc.ReviewError {
					t.Errorf("trial %d: %s", trial, f)
				}
			}
			t.Fatalf("trial %d: review failed", trial)
		}

		raw, err := ooc.RenderJSON(d)
		if err != nil {
			t.Fatalf("trial %d: render: %v", trial, err)
		}
		loaded, err := ooc.LoadDesignJSON(raw)
		if err != nil {
			t.Fatalf("trial %d: load: %v", trial, err)
		}
		rep2, err := ooc.Validate(loaded, ooc.ValidationOptions{})
		if err != nil {
			t.Fatalf("trial %d: validate loaded: %v", trial, err)
		}
		if diff := rep2.MaxFlowDeviation - rep.MaxFlowDeviation; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("trial %d: JSON round trip changed validation by %g", trial, diff)
		}
	}
	if generated < trials/2 {
		t.Fatalf("only %d/%d random specs generated — the generator is too fragile", generated, trials)
	}
}

// TestRandomSpecsTransport: transport simulation conserves mass on
// arbitrary generated chips.
func TestRandomSpecsTransport(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	done := 0
	for trial := 0; trial < 12 && done < 5; trial++ {
		spec := randomSpec(rng)
		d, err := ooc.Generate(spec)
		if err != nil {
			continue
		}
		res, err := ooc.SimulateTransport(d, ooc.TransportConfig{
			Bolus:    1e-9,
			Duration: 20,
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.MassBalanceError > 1e-6 {
			t.Fatalf("trial %d: mass balance %g", trial, res.MassBalanceError)
		}
		done++
	}
	if done == 0 {
		t.Fatal("no random chip could be simulated")
	}
}

// TestIndependentValidatorsAgree: the lumped exact-model validator and
// the rasterized field solver are built on different abstractions
// (channel list vs. drawn geometry); their measured module flows must
// agree. This is the strongest internal evidence that the generated
// designs behave as analyzed.
func TestIndependentValidatorsAgree(t *testing.T) {
	spec := ooc.Spec{
		Name:         "cross_validation",
		Reference:    ooc.StandardMale(),
		OrganismMass: ooc.Kilograms(1e-6),
		Modules: []ooc.ModuleSpec{
			{Organ: ooc.GITract, Kind: ooc.Layered},
			{Organ: ooc.Liver, Kind: ooc.Layered},
			{Organ: ooc.Brain, Kind: ooc.Layered},
		},
		Fluid:       ooc.MediumLowViscosity,
		ShearStress: ooc.PascalsShear(1.5),
	}
	d, err := ooc.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	lumped, err := ooc.Validate(d, ooc.ValidationOptions{})
	if err != nil {
		t.Fatal(err)
	}
	field, err := ooc.SolveFlowField(d, ooc.FieldOptions{CellSize: 150e-6})
	if err != nil {
		t.Fatal(err)
	}
	fieldFlows := field.ModuleFlows(d)
	for i, m := range lumped.Modules {
		lumpedQ := m.ActualFlow.CubicMetresPerSecond()
		fieldQ := fieldFlows[i]
		diff := (fieldQ - lumpedQ) / lumpedQ
		if diff < -0.10 || diff > 0.10 {
			t.Fatalf("module %s: lumped %.3g vs field %.3g (%.1f%%)",
				m.Name, lumpedQ, fieldQ, diff*100)
		}
	}
}
