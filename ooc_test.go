package ooc_test

import (
	"math"
	"strings"
	"testing"

	"ooc"
	"ooc/internal/testutil"
)

func quickSpec() ooc.Spec {
	return ooc.Spec{
		Name:         "api_test",
		Reference:    ooc.StandardMale(),
		OrganismMass: ooc.Kilograms(1e-6),
		Modules: []ooc.ModuleSpec{
			{Organ: ooc.Lung, Kind: ooc.Layered},
			{Organ: ooc.Liver, Kind: ooc.Layered},
			{Organ: ooc.Brain, Kind: ooc.Layered},
		},
		Fluid:       ooc.MediumLowViscosity,
		ShearStress: ooc.PascalsShear(1.5),
	}
}

// TestPublicAPIEndToEnd exercises the documented workflow: spec →
// Generate → Validate → render.
func TestPublicAPIEndToEnd(t *testing.T) {
	design, err := ooc.Generate(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(design.Modules) != 3 || len(design.Channels) == 0 {
		t.Fatal("incomplete design")
	}

	rep, err := ooc.Validate(design, ooc.ValidationOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxFlowDeviation <= 0 || rep.MaxFlowDeviation > 0.15 {
		t.Fatalf("flow deviation %g outside plausible band", rep.MaxFlowDeviation)
	}

	svg := ooc.RenderSVG(design)
	if !strings.Contains(svg, "<svg") {
		t.Fatal("SVG rendering failed")
	}
	raw, err := ooc.RenderJSON(design)
	if err != nil || len(raw) == 0 {
		t.Fatalf("JSON rendering failed: %v", err)
	}
}

func TestDeriveExposesScaling(t *testing.T) {
	res, err := ooc.Derive(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	liver := res.Modules[1]
	if math.Abs(liver.Mass.Kilograms()-1.42857e-8) > 1e-12 {
		t.Fatalf("liver module mass %g", liver.Mass.Kilograms())
	}
	if math.Abs(liver.Perfusion-0.554) > 1e-3 {
		t.Fatalf("liver perfusion %g", liver.Perfusion)
	}
}

func TestUnitConstructors(t *testing.T) {
	if !testutil.Approx(ooc.Millimetres(1).Metres(), 1e-3) {
		t.Fatal("Millimetres")
	}
	if !testutil.Approx(ooc.Micrometres(150).Metres(), 150e-6) {
		t.Fatal("Micrometres")
	}
	if math.Abs(ooc.MillilitresPerMinute(60).CubicMetresPerSecond()-1e-6) > 1e-18 {
		t.Fatal("MillilitresPerMinute")
	}
	if !testutil.Approx(ooc.DynPerCm2(15).Pascals(), 1.5) {
		t.Fatal("DynPerCm2")
	}
	if math.Abs(ooc.Centipoise(0.72).PascalSeconds()-7.2e-4) > 1e-18 {
		t.Fatal("Centipoise")
	}
	if !testutil.Approx(ooc.Grams(1).Kilograms(), 1e-3) || !testutil.Approx(ooc.Milligrams(1).Kilograms(), 1e-6) {
		t.Fatal("mass constructors")
	}
}

func TestReferenceTables(t *testing.T) {
	male := ooc.StandardMale()
	female := ooc.StandardFemale()
	if male.BodyMass <= female.BodyMass {
		t.Fatal("reference body masses implausible")
	}
	liver, err := male.Organ(ooc.Liver)
	if err != nil {
		t.Fatal(err)
	}
	if !testutil.Approx(liver.Mass.Kilograms(), 1.0) {
		t.Fatalf("male liver mass %g, want the paper's 1 kg", liver.Mass.Kilograms())
	}
}

// TestValidationModels: the approx/no-loss validation reproduces the
// design exactly; the exact model deviates.
func TestValidationModels(t *testing.T) {
	design, err := ooc.Generate(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	self, err := ooc.Validate(design, ooc.ValidationOptions{
		Model:                 ooc.ModelApprox,
		DisableBendLosses:     true,
		DisableJunctionLosses: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if self.MaxFlowDeviation > 1e-6 {
		t.Fatalf("self-consistency broken: %g", self.MaxFlowDeviation)
	}
	exact, err := ooc.Validate(design, ooc.ValidationOptions{Model: ooc.ModelExact})
	if err != nil {
		t.Fatal(err)
	}
	if exact.MaxFlowDeviation <= self.MaxFlowDeviation {
		t.Fatal("exact model should deviate more than the self-consistent one")
	}
}
