// Package ooc is a design-automation library for Organs-on-Chip (OoC)
// devices — a Go implementation of the method of Emmerich, Ebner and
// Wille, "Design Automation for Organs-on-Chip" (DATE 2024).
//
// From a physiological specification — which organ modules to combine,
// the shear stress the membrane endothelium must experience, and the
// physiological perfusion between organs — the library automatically
// generates a complete microfluidic chip design: scaled organ-module
// and membrane dimensions, a routed channel network with meander
// channels that realizes the required flow distribution, and the pump
// settings to drive it. A built-in validation pipeline (a lumped-
// element re-solve of the generated geometry under exact duct physics,
// substituting for the paper's OpenFOAM simulations) measures how
// closely the design meets the specification.
//
// Quick start:
//
//	spec := ooc.Spec{
//		Name:         "liver_lung_brain",
//		Reference:    ooc.StandardMale(),
//		OrganismMass: 1e-6, // kg
//		Modules: []ooc.ModuleSpec{
//			{Organ: ooc.Lung, Kind: ooc.Layered},
//			{Organ: ooc.Liver, Kind: ooc.Layered},
//			{Organ: ooc.Brain, Kind: ooc.Layered},
//		},
//		Fluid:       ooc.MediumLowViscosity,
//		ShearStress: 1.5, // Pa
//	}
//	design, err := ooc.Generate(spec)
//	...
//	report, err := ooc.Validate(design, ooc.DefaultValidationOptions())
package ooc

import (
	"context"

	"ooc/internal/core"
	"ooc/internal/field"
	"ooc/internal/fluid"
	"ooc/internal/linalg"
	"ooc/internal/obs"
	"ooc/internal/optimize"
	"ooc/internal/physio"
	"ooc/internal/render"
	"ooc/internal/review"
	"ooc/internal/sim"
	"ooc/internal/transport"
	"ooc/internal/units"
)

// Specification types.
type (
	// Spec is the formal OoC specification (organ modules, fluid,
	// shear-stress target, scaling reference).
	Spec = core.Spec
	// ModuleSpec describes one organ module in a Spec.
	ModuleSpec = core.ModuleSpec
	// GeometryParams are the free geometric choices (channel height,
	// spacing, offsets); zero values select paper defaults.
	GeometryParams = core.GeometryParams
	// TissueKind distinguishes layered from round (spheroid) tissue.
	TissueKind = core.TissueKind
)

// Tissue kinds.
const (
	Layered = core.Layered
	Round   = core.Round
)

// Design output types.
type (
	// Design is a complete generated chip.
	Design = core.Design
	// Channel is one routed channel of a Design.
	Channel = core.Channel
	// ChannelKind classifies channels (module, supply, feed, …).
	ChannelKind = core.ChannelKind
	// PumpSettings are the external pump flow rates.
	PumpSettings = core.PumpSettings
	// Resolved is the specification with all derived quantities
	// (module sizes, perfusions, flows).
	Resolved = core.Resolved
	// FlowPlan is the Eq. 5 flow-rate initialization.
	FlowPlan = core.FlowPlan
)

// Channel kinds.
const (
	ModuleChannel     = core.ModuleChannel
	ConnectionChannel = core.ConnectionChannel
	SupplyChannel     = core.SupplyChannel
	DischargeChannel  = core.DischargeChannel
	FeedSegment       = core.FeedSegment
	DrainSegment      = core.DrainSegment
	InletLead         = core.InletLead
	OutletLead        = core.OutletLead
)

// Physiology.
type (
	// Reference is a reference organism ("standard human") with organ
	// masses and blood flows.
	Reference = physio.Reference
	// OrganID names an organ in a Reference.
	OrganID = physio.OrganID
	// OrganRef is one organ's reference parameters.
	OrganRef = physio.OrganRef
)

// Organ identifiers.
const (
	Liver    = physio.Liver
	Lung     = physio.Lung
	Brain    = physio.Brain
	Kidney   = physio.Kidney
	GITract  = physio.GITract
	Heart    = physio.Heart
	Skin     = physio.Skin
	Spleen   = physio.Spleen
	Pancreas = physio.Pancreas
	Muscle   = physio.Muscle
	Tumor    = physio.Tumor
)

// StandardMale returns the 70 kg reference standard human male.
func StandardMale() Reference { return physio.StandardMale() }

// StandardFemale returns the reference standard human female.
func StandardFemale() Reference { return physio.StandardFemale() }

// Fluids.
type Fluid = fluid.Fluid

// Culture-medium presets spanning the viscosity range of the paper's
// evaluation.
var (
	MediumLowViscosity  = fluid.MediumLowViscosity
	MediumTypical       = fluid.MediumTypical
	MediumHighViscosity = fluid.MediumHighViscosity
)

// Published culture-medium property values (Poon 2022) — the table of
// record lives in internal/physio; these are the public handles.
const (
	MediumViscosityLow     = physio.MediumViscosityLow
	MediumViscosityTypical = physio.MediumViscosityTypical
	MediumViscosityHigh    = physio.MediumViscosityHigh
)

// Generate runs the full design-automation pipeline: specification
// derivation (Sec. III-A), flow initialization, pressure correction,
// meander insertion and offset correction (Sec. III-B).
func Generate(spec Spec) (*Design, error) { return core.Generate(spec) }

// Derive resolves the specification without generating geometry —
// organism scaling (Eq. 1/2), module sizing, perfusion (Eq. 4) and
// module flows (Eq. 3).
func Derive(spec Spec) (*Resolved, error) { return core.Derive(spec) }

// GenerateBaseline builds the no-pressure-correction baseline (the
// manual-design status quo): same topology and dimensions, straight
// vertical channels, Kirchhoff's voltage law left unenforced.
// Validating it against the specification quantifies what the paper's
// method contributes.
func GenerateBaseline(spec Spec) (*Design, error) { return core.GenerateNaive(spec) }

// Validation (the CFD substitute).
type (
	// ValidationOptions selects the resistance model and bend-loss
	// handling.
	ValidationOptions = sim.Options
	// ValidationReport holds per-module flow and perfusion deviations.
	ValidationReport = sim.Report
	// ModuleResult is one module's spec-vs-achieved comparison.
	ModuleResult = sim.ModuleResult
)

// DefaultValidationOptions returns the documented validation defaults
// (exact model, auto Poisson scheme, no error budget) — the intended
// starting point before overriding fields.
func DefaultValidationOptions() ValidationOptions { return sim.DefaultOptions() }

// Validation models.
const (
	// ModelExact validates with the exact Fourier-series duct
	// resistance (default).
	ModelExact = sim.ModelExact
	// ModelApprox validates with the designer's own approximation;
	// with bend losses disabled this must reproduce the design exactly.
	ModelApprox = sim.ModelApprox
	// ModelNumeric validates with the FDM duct-flow solve (the
	// CFD-lite leg); under a deadline its channels degrade gracefully
	// to ModelExact, recorded in ValidationReport.Degradations.
	ModelNumeric = sim.ModelNumeric
)

// Validate re-solves the generated geometry under a high-fidelity
// hydraulic model and reports module flow and perfusion deviations —
// the observables the paper extracts from CFD simulation.
func Validate(d *Design, opt ValidationOptions) (*ValidationReport, error) {
	return sim.Validate(d, opt)
}

// ValidateContext is Validate with cooperative cancellation: the
// network build and its iterative solves check ctx, cancellation and
// deadline errors wrap context.Canceled / context.DeadlineExceeded
// (use errors.Is to tell them from ErrNoConvergence), and under
// ModelNumeric a deadline degrades per-channel to the analytic exact
// model instead of failing (ValidationReport.Degradations lists the
// affected channels).
func ValidateContext(ctx context.Context, d *Design, opt ValidationOptions) (*ValidationReport, error) {
	return sim.ValidateContext(ctx, d, opt)
}

// ErrNoConvergence is wrapped by every iterative-solver failure that
// exhausted its iteration budget — distinguishable with errors.Is
// from a cancellation or deadline abort.
var ErrNoConvergence = linalg.ErrNoConvergence

// Solver telemetry. Iterative solves, cross-section cache traffic and
// graceful model degradations are recorded into the TelemetryCollector
// carried by the context (or a process-wide default when none is
// installed); its Snapshot is a deterministic Summary whose Format
// rendering is byte-identical for any worker count.
type (
	// TelemetryCollector aggregates solver/cache/degradation events.
	TelemetryCollector = obs.Collector
	// TelemetrySummary is a deterministic snapshot of a collector.
	TelemetrySummary = obs.Summary
	// SolveStats is one iterative solve's outcome, including partial
	// progress on aborted solves.
	SolveStats = obs.SolveStats
)

// NewTelemetryCollector returns an empty telemetry collector.
func NewTelemetryCollector() *TelemetryCollector { return obs.NewCollector() }

// WithTelemetry returns a context carrying the collector; validation
// and solves running under it record there instead of the process
// default.
func WithTelemetry(ctx context.Context, c *TelemetryCollector) context.Context {
	return obs.WithCollector(ctx, c)
}

// RenderSVG draws the chip layout as an SVG document.
func RenderSVG(d *Design) string {
	return render.SVG(d, render.SVGOptions{ShowLabels: true})
}

// RenderJSON serializes the design to an indented JSON document.
func RenderJSON(d *Design) ([]byte, error) { return render.JSON(d) }

// Unit types (SI-based, re-exported from the units package).
type (
	// Length in metres.
	Length = units.Length
	// Mass in kilograms.
	Mass = units.Mass
	// Volume in cubic metres.
	Volume = units.Volume
	// Area in square metres.
	Area = units.Area
	// Pressure in pascals.
	Pressure = units.Pressure
	// ShearStress in pascals.
	ShearStress = units.ShearStress
	// FlowRate in m³/s.
	FlowRate = units.FlowRate
	// Viscosity in Pa·s.
	Viscosity = units.Viscosity
	// Density in kg/m³.
	Density = units.Density
	// HydraulicResistance in Pa·s/m³.
	HydraulicResistance = units.HydraulicResistance
)

// Unit constructors.
func Metres(v float64) Length      { return units.Metres(v) }
func Millimetres(v float64) Length { return units.Millimetres(v) }
func Micrometres(v float64) Length { return units.Micrometres(v) }

func Kilograms(v float64) Mass  { return units.Kilograms(v) }
func Grams(v float64) Mass      { return units.Grams(v) }
func Milligrams(v float64) Mass { return units.Milligrams(v) }

func Pascals(v float64) Pressure         { return units.Pascals(v) }
func PascalsShear(v float64) ShearStress { return units.PascalsShear(v) }
func DynPerCm2(v float64) ShearStress    { return units.DynPerCm2(v) }

func CubicMetresPerSecond(v float64) FlowRate { return units.CubicMetresPerSecond(v) }
func MillilitresPerMinute(v float64) FlowRate { return units.MillilitresPerMinute(v) }
func MicrolitresPerMinute(v float64) FlowRate { return units.MicrolitresPerMinute(v) }

func PascalSeconds(v float64) Viscosity { return units.PascalSeconds(v) }
func Centipoise(v float64) Viscosity    { return units.Centipoise(v) }

func KilogramsPerCubicMetre(v float64) Density { return units.KilogramsPerCubicMetre(v) }

// Compound transport (pharmacokinetics on the chip).
type (
	// TransportConfig sets up a compound-transport simulation
	// (infusion or bolus, per-module kinetics).
	TransportConfig = transport.Config
	// TransportResult holds per-module exposure metrics (peak, AUC,
	// washout) and solver self-checks.
	TransportResult = transport.Result
	// ModuleKinetics is a compound's clearance/secretion in one module.
	ModuleKinetics = transport.ModuleKinetics
	// ModuleExposure is one module's concentration history summary.
	ModuleExposure = transport.ModuleExposure
)

// SimulateTransport runs a compound-transport simulation on a
// generated design: how a drug or cytokine distributes between the
// organ modules through the circulating fluid.
func SimulateTransport(d *Design, cfg TransportConfig) (*TransportResult, error) {
	return transport.Simulate(d, cfg)
}

// Fabrication tolerance analysis.
type (
	// ToleranceConfig sets up a Monte Carlo fabrication study.
	ToleranceConfig = sim.ToleranceConfig
	// ToleranceReport summarizes deviation distributions and yield.
	ToleranceReport = sim.ToleranceReport
	// DeviationStats holds mean/std/median/P95/max of a deviation
	// metric.
	DeviationStats = sim.DeviationStats
)

// DefaultToleranceConfig returns the Monte Carlo study defaults
// (200 samples, seed 1). The zero ToleranceConfig is rejected —
// Samples must be at least 1.
func DefaultToleranceConfig() ToleranceConfig { return sim.DefaultToleranceConfig() }

// AnalyzeTolerance fabricates the design many times with random
// dimensional errors and reports the resulting deviation distribution
// and yield.
func AnalyzeTolerance(d *Design, cfg ToleranceConfig) (*ToleranceReport, error) {
	return sim.ToleranceAnalysis(d, cfg)
}

// AnalyzeToleranceContext is AnalyzeTolerance with cooperative
// cancellation: samples run through the shared pool, which stops
// claiming new samples once ctx is done. Results are bit-identical
// for any ToleranceConfig.Workers value.
func AnalyzeToleranceContext(ctx context.Context, d *Design, cfg ToleranceConfig) (*ToleranceReport, error) {
	return sim.ToleranceAnalysisContext(ctx, d, cfg)
}

// PumpPressures are pressure-controlled pump set points derived from
// the design.
type PumpPressures = sim.PumpPressures

// DesignPumpPressures computes the set pressures a pressure-controlled
// pumping setup would be programmed with.
func DesignPumpPressures(d *Design) (PumpPressures, error) {
	return sim.DesignPumpPressures(d)
}

// DesignPumpPressuresContext is DesignPumpPressures with cooperative
// cancellation (the underlying network build checks ctx).
func DesignPumpPressuresContext(ctx context.Context, d *Design) (PumpPressures, error) {
	return sim.DesignPumpPressuresContext(ctx, d)
}

// ValidatePressureDriven validates the chip under pressure-controlled
// pumping at the designer-model set pressures (instead of the
// flow-controlled pumps the method outputs).
func ValidatePressureDriven(d *Design, opt ValidationOptions) (*ValidationReport, error) {
	return sim.ValidatePressureDriven(d, opt)
}

// ValidatePressureDrivenContext is ValidatePressureDriven with the
// cancellation and degradation semantics of ValidateContext.
func ValidatePressureDrivenContext(ctx context.Context, d *Design, opt ValidationOptions) (*ValidationReport, error) {
	return sim.ValidatePressureDrivenContext(ctx, d, opt)
}

// RenderDXF exports the chip layout as an AutoCAD R12 DXF document for
// fabrication.
func RenderDXF(d *Design) string { return render.DXF(d) }

// RenderGDS exports the chip layout as a GDSII stream — the
// photolithography mask interchange standard (channels as PATH
// elements with physical width, module basins as BOUNDARY polygons,
// 1 nm database unit).
func RenderGDS(d *Design) []byte { return render.GDS(d) }

// Depth-averaged flow-field solve (the Fig. 4 velocity map).
type (
	// FlowField is a solved Hele-Shaw field over the rasterized chip.
	FlowField = field.Field
	// FieldOptions configures the field solve.
	FieldOptions = field.Options
)

// SolveFlowField rasterizes the chip layout and solves the
// depth-averaged pressure/velocity field — an independent, purely
// geometric validation channel and the source of Fig. 4-style velocity
// maps (FlowField.RenderPNG).
func SolveFlowField(d *Design, opt FieldOptions) (*FlowField, error) {
	return field.Solve(d, opt)
}

// SolveFlowFieldContext is SolveFlowField with cooperative
// cancellation: the CG iteration checks ctx and an aborted solve
// returns an error wrapping ctx.Err(), distinct from
// ErrNoConvergence.
func SolveFlowFieldContext(ctx context.Context, d *Design, opt FieldOptions) (*FlowField, error) {
	return field.SolveContext(ctx, d, opt)
}

// LoadDesignJSON reconstructs a design from its RenderJSON
// serialization; the result can be validated, simulated and rendered.
func LoadDesignJSON(raw []byte) (*Design, error) { return render.ParseJSON(raw) }

// Design review (pre-fabrication checklist).
type (
	// ReviewReport is a completed design review.
	ReviewReport = review.Review
	// ReviewFinding is one review observation.
	ReviewFinding = review.Finding
	// ReviewSeverity grades findings (Info/Warning/Error).
	ReviewSeverity = review.Severity
)

// Review severities.
const (
	ReviewInfo    = review.Info
	ReviewWarning = review.Warning
	ReviewError   = review.Error
)

// ReviewDesign runs the full engineering checklist on a generated
// design: Kirchhoff consistency, design rules, shear window,
// laminarity, entrance lengths, oxygen supply, vascularization limits,
// pump pressure and footprint.
func ReviewDesign(d *Design) (*ReviewReport, error) { return review.Check(d) }

// Design-space optimization.
type (
	// OptimizeOptions selects the objective, constraints and candidate
	// grids.
	OptimizeOptions = optimize.Options
	// OptimizeConstraints bound the feasible region.
	OptimizeConstraints = optimize.Constraints
	// OptimizeResult holds the winning design and the candidate log.
	OptimizeResult = optimize.Result
	// OptimizeObjective selects what to minimize.
	OptimizeObjective = optimize.Objective
)

// Optimization objectives.
const (
	MinimizeArea         = optimize.MinimizeArea
	MinimizePumpPressure = optimize.MinimizePumpPressure
	MinimizeTotalFlow    = optimize.MinimizeTotalFlow
)

// ErrInfeasible is returned by Optimize when no candidate satisfies
// the constraints.
var ErrInfeasible = optimize.ErrInfeasible

// DefaultOptimizeConstraints returns the search's practical defaults
// (a 5 % flow-deviation budget). The zero OptimizeConstraints means
// what it says: a zero deviation budget, which no real candidate
// meets.
func DefaultOptimizeConstraints() OptimizeConstraints { return optimize.DefaultConstraints() }

// Optimize searches the designer's free geometric parameters for the
// best feasible chip under the given objective and constraints.
func Optimize(spec Spec, opt OptimizeOptions) (*OptimizeResult, error) {
	return optimize.Optimize(spec, opt)
}

// OptimizeContext is Optimize with cooperative cancellation: the
// candidate loop checks ctx between candidates and an aborted search
// returns the partial OptimizeResult together with an error wrapping
// ctx.Err().
func OptimizeContext(ctx context.Context, spec Spec, opt OptimizeOptions) (*OptimizeResult, error) {
	return optimize.Search(ctx, spec, opt)
}
