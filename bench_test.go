// Benchmarks regenerating every table and figure of the paper's
// evaluation (Sec. IV), plus ablations and component-level benches.
//
//	go test -bench=. -benchmem
//
// Experiment index (see DESIGN.md):
//
//	BenchmarkFig4MaleSimple   — Fig. 4: male_simple generation + CFD-substitute validation
//	BenchmarkTableI           — Table I: the full 288-instance evaluation grid
//	BenchmarkTableIRow/*      — Table I, one row (use case) at the Fig. 4 operating point
//	BenchmarkGenerateByModules— scalability of design generation, 3–8 modules (generic use cases)
//	BenchmarkAblation*        — design-choice ablations (resistance model, minor losses)
//	Benchmark<component>      — substrate kernels (meander synthesis, nodal solve, FDM)
package ooc_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"ooc"
	"ooc/internal/core"
	"ooc/internal/dyn"
	"ooc/internal/eval"
	"ooc/internal/fluid"
	"ooc/internal/linalg"
	"ooc/internal/meander"
	"ooc/internal/physio"
	"ooc/internal/report"
	"ooc/internal/sim"
	"ooc/internal/units"
	"ooc/internal/usecases"
)

// BenchmarkFig4MaleSimple regenerates the Fig. 4 experiment: the
// male_simple chip at µ=7.2e-4 Pa·s, τ=1.5 Pa, spacing 1 mm, validated
// with the CFD substitute. Reported metrics: worst module-flow and
// perfusion deviations in percent (the figure quotes 0.86–1.90 % and
// 0.09–1.95 %).
func BenchmarkFig4MaleSimple(b *testing.B) {
	in := usecases.Fig4Instance()
	var rep *sim.Report
	for i := 0; i < b.N; i++ {
		d, err := core.Generate(in.Spec)
		if err != nil {
			b.Fatal(err)
		}
		rep, err = sim.Validate(d, sim.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.MaxFlowDeviation*100, "flowdev-max-%")
	b.ReportMetric(rep.MaxPerfDeviation*100, "perfdev-max-%")
	if b.N == 1 {
		b.Logf("\n%s", report.FormatFig4(rep))
	}
}

// BenchmarkDynamic times the transient tier on the Fig. 4 chip: a
// 1-second pulsatile dosed run (backward-Euler pressures + CFL-bounded
// species advection). Reported metrics: integrator steps and the
// species mass-balance defect.
func BenchmarkDynamic(b *testing.B) {
	in := usecases.Fig4Instance()
	d, err := core.Generate(in.Spec)
	if err != nil {
		b.Fatal(err)
	}
	opt := sim.Options{Model: sim.ModelDynamic, Dynamic: sim.DefaultDynamicOptions()}
	opt.Dynamic.Duration = time.Second
	opt.Dynamic.Profile = dyn.Profile{Kind: dyn.ProfilePulse, Amplitude: 0.5, Period: 0.25}
	opt.Dynamic.Species = dyn.Species{Enabled: true, DoseConcentration: 1, DoseDuration: 1, ArrivalThreshold: 0.1}
	var dr *sim.DynamicReport
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dr, err = sim.ValidateDynamic(d, opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(dr.Steps), "steps")
	b.ReportMetric(dr.MassBalanceError, "mass-defect")
}

// BenchmarkTableI regenerates the entire Table I evaluation: all eight
// use cases over the extended 3×3×4 grid (288 instances, matching the
// paper's reported design count), aggregated into per-use-case average
// and worst-case deviations.
func BenchmarkTableI(b *testing.B) {
	cases := usecases.All()
	sweep := usecases.ExtendedSweep()
	var tbl report.Table
	for i := 0; i < b.N; i++ {
		tbl = report.Table{}
		for _, uc := range cases {
			var reps []*sim.Report
			failures := 0
			for _, in := range usecases.Instances([]usecases.UseCase{uc}, sweep) {
				d, err := core.Generate(in.Spec)
				if err != nil {
					failures++
					continue
				}
				rep, err := sim.Validate(d, sim.Options{})
				if err != nil {
					failures++
					continue
				}
				reps = append(reps, rep)
			}
			tbl.Rows = append(tbl.Rows, report.Aggregate(uc.Name, uc.ModuleCount, reps, failures))
		}
		tbl.Sort()
	}
	var worstFlow, worstPerf float64
	for _, r := range tbl.Rows {
		if r.FlowMax > worstFlow {
			worstFlow = r.FlowMax
		}
		if r.PerfMax > worstPerf {
			worstPerf = r.PerfMax
		}
	}
	b.ReportMetric(worstFlow, "flowdev-max-%")
	b.ReportMetric(worstPerf, "perfdev-max-%")
	if b.N == 1 {
		b.Logf("\n%s", tbl.Format())
	}
}

// BenchmarkTableIParallel evaluates the same 288-instance grid through
// the shared worker pool (internal/eval on internal/parallel) — the
// production path of cmd/oocbench. Its Table I output is byte-identical
// to the serial BenchmarkTableI aggregation; the wall-clock ratio of
// the two benchmarks is the pool's speedup on this machine.
func BenchmarkTableIParallel(b *testing.B) {
	cases := usecases.All()
	instances := usecases.Instances(cases, usecases.ExtendedSweep())
	var tbl report.Table
	for i := 0; i < b.N; i++ {
		reps, err := eval.Grid(context.Background(), instances, 0, sim.Options{})
		if err != nil {
			b.Fatal(err)
		}
		tbl = eval.Table(cases, instances, reps)
	}
	var worstFlow, worstPerf float64
	for _, r := range tbl.Rows {
		if r.FlowMax > worstFlow {
			worstFlow = r.FlowMax
		}
		if r.PerfMax > worstPerf {
			worstPerf = r.PerfMax
		}
	}
	b.ReportMetric(worstFlow, "flowdev-max-%")
	b.ReportMetric(worstPerf, "perfdev-max-%")
	if b.N == 1 {
		b.Logf("\n%s", tbl.Format())
	}
}

// BenchmarkTableIRow runs one Table I row (one use case) at the Fig. 4
// operating point — the per-chip cost of the evaluation.
func BenchmarkTableIRow(b *testing.B) {
	for _, uc := range usecases.All() {
		uc := uc
		b.Run(uc.Name, func(b *testing.B) {
			spec := uc.Build()
			var rep *sim.Report
			for i := 0; i < b.N; i++ {
				d, err := core.Generate(spec)
				if err != nil {
					b.Fatal(err)
				}
				rep, err = sim.Validate(d, sim.Options{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rep.AvgFlowDeviation*100, "flowdev-avg-%")
			b.ReportMetric(rep.AvgPerfDeviation*100, "perfdev-avg-%")
		})
	}
}

// BenchmarkGenerateByModules measures how design generation scales
// with the number of organ modules (the paper's scalability argument
// for generic1–generic4, extended down to 3).
func BenchmarkGenerateByModules(b *testing.B) {
	for n := 3; n <= 8; n++ {
		n := n
		b.Run(fmt.Sprintf("modules=%d", n), func(b *testing.B) {
			spec := ooc.Spec{
				Name:         fmt.Sprintf("bench%d", n),
				Reference:    ooc.StandardMale(),
				OrganismMass: ooc.Kilograms(1e-6),
				Fluid:        ooc.MediumLowViscosity,
				ShearStress:  ooc.PascalsShear(1.5),
			}
			for i := 0; i < n; i++ {
				spec.Modules = append(spec.Modules, ooc.ModuleSpec{
					Name:  fmt.Sprintf("liver%d", i),
					Organ: ooc.Liver,
					Kind:  ooc.Layered,
				})
			}
			var d *ooc.Design
			var err error
			for i := 0; i < b.N; i++ {
				d, err = ooc.Generate(spec)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(d.Iterations), "iterations")
			b.ReportMetric(d.Bounds.Width()*1e3, "chip-width-mm")
		})
	}
}

// BenchmarkAblationResistanceModel compares validation under the exact
// Fourier-series model vs. the designer's Eq. 6 — quantifying the
// model error the paper's footnote 1 concedes ("an approximation for
// h/w → 0").
func BenchmarkAblationResistanceModel(b *testing.B) {
	d, err := core.Generate(usecases.Fig4Instance().Spec)
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range []struct {
		name string
		opt  sim.Options
	}{
		{"exact", sim.Options{Model: sim.ModelExact, DisableBendLosses: true, DisableJunctionLosses: true}},
		{"approx", sim.Options{Model: sim.ModelApprox, DisableBendLosses: true, DisableJunctionLosses: true}},
	} {
		m := m
		b.Run(m.name, func(b *testing.B) {
			var rep *sim.Report
			for i := 0; i < b.N; i++ {
				rep, err = sim.Validate(d, m.opt)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rep.MaxFlowDeviation*100, "flowdev-max-%")
		})
	}
}

// BenchmarkAblationMinorLosses isolates the contribution of each
// minor-loss family (meander bends, T-junctions) to the validation
// deviation.
func BenchmarkAblationMinorLosses(b *testing.B) {
	d, err := core.Generate(usecases.Fig4Instance().Spec)
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range []struct {
		name string
		opt  sim.Options
	}{
		{"all-losses", sim.Options{}},
		{"no-bends", sim.Options{DisableBendLosses: true}},
		{"no-junctions", sim.Options{DisableJunctionLosses: true}},
		{"straight-only", sim.Options{DisableBendLosses: true, DisableJunctionLosses: true}},
	} {
		m := m
		b.Run(m.name, func(b *testing.B) {
			var rep *sim.Report
			for i := 0; i < b.N; i++ {
				rep, err = sim.Validate(d, m.opt)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rep.MaxFlowDeviation*100, "flowdev-max-%")
			b.ReportMetric(rep.MaxPerfDeviation*100, "perfdev-max-%")
		})
	}
}

// BenchmarkMeanderSynthesis measures the meander kernel at a typical
// supply-channel problem.
func BenchmarkMeanderSynthesis(b *testing.B) {
	spec := meander.Spec{
		Height:       10e-3,
		TargetLength: 45e-3,
		ChannelWidth: 225e-6,
		Spacing:      1e-3,
		MaxWidth:     8e-3,
		Margin:       1.6e-3,
		EndX:         1.225e-3,
	}
	for i := 0; i < b.N; i++ {
		if _, err := meander.Synthesize(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNodalSolve measures the lumped network solve for the
// largest evaluation chip (generic4, 8 modules).
func BenchmarkNodalSolve(b *testing.B) {
	uc, err := usecases.ByName("generic4")
	if err != nil {
		b.Fatal(err)
	}
	d, err := core.Generate(uc.Build())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Validate(d, sim.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCrossSectionFDM measures the Poisson cross-section solver
// (the CFD-lite kernel) on the standard module channel.
func BenchmarkCrossSectionFDM(b *testing.B) {
	cs := fluid.CrossSection{Width: units.Millimetres(1), Height: units.Micrometres(150)}
	for i := 0; i < b.N; i++ {
		if _, err := sim.NumericResistance(cs, units.Millimetres(1), physio.MediumViscosityLow, 32); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCrossSectionCached measures the cross-section solve cache:
// `cold` resets the cache before every solve (the pre-cache cost),
// `warm` solves the same similarity class repeatedly and amortizes the
// single FDM solve — the common case in a use-case grid, where every
// module channel shares one aspect ratio. The cold/warm ratio is the
// per-channel speedup of a cache hit.
func BenchmarkCrossSectionCached(b *testing.B) {
	cs := fluid.CrossSection{Width: units.Millimetres(1), Height: units.Micrometres(150)}
	l := units.Millimetres(1)
	mu := physio.MediumViscosityLow
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sim.ResetCrossSectionCache()
			if _, err := sim.NumericResistance(cs, l, mu, 32); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		sim.ResetCrossSectionCache()
		if _, err := sim.NumericResistance(cs, l, mu, 32); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sim.NumericResistance(cs, l, mu, 32); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkValidateNumericModel measures the FDM-backed validation of
// the Fig. 4 chip — the CFD-lite model on every channel — with a warm
// solve cache, against the same validation with the cache cleared on
// every iteration.
func BenchmarkValidateNumericModel(b *testing.B) {
	d, err := core.Generate(usecases.Fig4Instance().Spec)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("cold-cache", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sim.ResetCrossSectionCache()
			if _, err := sim.Validate(d, sim.Options{Model: sim.ModelNumeric}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm-cache", func(b *testing.B) {
		sim.ResetCrossSectionCache()
		if _, err := sim.Validate(d, sim.Options{Model: sim.ModelNumeric}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sim.Validate(d, sim.Options{Model: sim.ModelNumeric}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDerive measures specification resolution alone (Eq. 1–4).
func BenchmarkDerive(b *testing.B) {
	spec := usecases.Fig4Instance().Spec
	for i := 0; i < b.N; i++ {
		if _, err := core.Derive(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPerfusionTable measures the physiology lookups used per
// design.
func BenchmarkPerfusionTable(b *testing.B) {
	ref := physio.StandardMale()
	organs := []physio.OrganID{physio.Liver, physio.Lung, physio.Brain, physio.Kidney, physio.GITract}
	for i := 0; i < b.N; i++ {
		for _, o := range organs {
			if _, err := physio.Perfusion(o, &ref, physio.DefaultDilution); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkLUSolve measures the dense kernel at nodal-analysis sizes.
func BenchmarkLUSolve(b *testing.B) {
	n := 40
	a, err := linalg.NewMatrix(n, n)
	if err != nil {
		b.Fatal(err)
	}
	rhs := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				a.Set(i, j, float64(n))
			} else {
				a.Set(i, j, 1/float64(1+i+j))
			}
		}
		rhs[i] = float64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := linalg.Solve(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTransportBolus measures the compound-transport simulation
// (extension: pharmacokinetics on the generated chip).
func BenchmarkTransportBolus(b *testing.B) {
	d, err := core.Generate(usecases.Fig4Instance().Spec)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ooc.SimulateTransport(d, ooc.TransportConfig{Bolus: 1e-9, Duration: 10})
		if err != nil {
			b.Fatal(err)
		}
		if res.MassBalanceError > 1e-6 {
			b.Fatal("mass balance")
		}
	}
}

// BenchmarkToleranceAnalysis measures the Monte Carlo fabrication
// study (extension).
func BenchmarkToleranceAnalysis(b *testing.B) {
	d, err := core.Generate(usecases.Fig4Instance().Spec)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var rep *sim.ToleranceReport
	for i := 0; i < b.N; i++ {
		rep, err = sim.ToleranceAnalysis(d, sim.ToleranceConfig{
			WidthSigma: 0.02, HeightSigma: 0.02, Samples: 100, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.FlowDev.Mean*100, "flowdev-mean-%")
	b.ReportMetric(rep.YieldWithin["10%"]*100, "yield10-%")
}

// BenchmarkAblationPumpMode compares flow-controlled vs
// pressure-controlled pump operation under the exact model.
func BenchmarkAblationPumpMode(b *testing.B) {
	d, err := core.Generate(usecases.Fig4Instance().Spec)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("flow-driven", func(b *testing.B) {
		var rep *sim.Report
		for i := 0; i < b.N; i++ {
			rep, err = sim.Validate(d, sim.Options{})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(rep.MaxFlowDeviation*100, "flowdev-max-%")
	})
	b.Run("pressure-driven", func(b *testing.B) {
		var rep *sim.Report
		for i := 0; i < b.N; i++ {
			rep, err = sim.ValidatePressureDriven(d, sim.Options{})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(rep.MaxFlowDeviation*100, "flowdev-max-%")
	})
}

// BenchmarkFieldSolve measures the depth-averaged Hele-Shaw solve of
// the full chip layout (the Fig. 4 velocity-field reproduction).
func BenchmarkFieldSolve(b *testing.B) {
	d, err := core.Generate(usecases.Fig4Instance().Spec)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var f *ooc.FlowField
	for i := 0; i < b.N; i++ {
		f, err = ooc.SolveFlowField(d, ooc.FieldOptions{CellSize: 150e-6})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(f.ChannelCells), "channel-cells")
	b.ReportMetric(float64(f.Iterations), "cg-iterations")
}

// BenchmarkBaselineNaive compares the paper's method against the
// manual-design status quo: identical topology and dimensions but no
// pressure correction. The reported deviations quantify the value of
// the paper's central contribution.
func BenchmarkBaselineNaive(b *testing.B) {
	spec := usecases.Fig4Instance().Spec
	for _, mode := range []struct {
		name string
		gen  func(core.Spec) (*core.Design, error)
	}{
		{"corrected", core.Generate},
		{"naive-baseline", core.GenerateNaive},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			var rep *sim.Report
			for i := 0; i < b.N; i++ {
				d, err := mode.gen(spec)
				if err != nil {
					b.Fatal(err)
				}
				rep, err = sim.Validate(d, sim.Options{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rep.MaxFlowDeviation*100, "flowdev-max-%")
			b.ReportMetric(rep.MaxPerfDeviation*100, "perfdev-max-%")
		})
	}
}
