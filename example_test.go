package ooc_test

import (
	"fmt"
	"log"

	"ooc"
)

// Example generates the paper's male_simple chip and prints the
// specification-level quantities the design realizes.
func Example() {
	spec := ooc.Spec{
		Name:         "male_simple",
		Reference:    ooc.StandardMale(),
		OrganismMass: ooc.Kilograms(1e-6),
		Modules: []ooc.ModuleSpec{
			{Organ: ooc.Lung, Kind: ooc.Layered},
			{Organ: ooc.Liver, Kind: ooc.Layered},
			{Organ: ooc.Brain, Kind: ooc.Layered},
		},
		Fluid:       ooc.MediumLowViscosity,
		ShearStress: ooc.PascalsShear(1.5),
	}
	design, err := ooc.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	liver := design.Modules[1]
	fmt.Printf("liver module: %.0f µm long, perfusion %.1f%%\n",
		liver.Length.Micrometres(), liver.Perfusion*100)
	fmt.Printf("module flow: %.4g m³/s\n", liver.FlowRate.CubicMetresPerSecond())
	// Output:
	// liver module: 90 µm long, perfusion 55.4%
	// module flow: 7.812e-09 m³/s
}

// ExampleDerive shows the paper's Example 1 arithmetic: scaling a
// liver module for a 1 mg miniaturized organism.
func ExampleDerive() {
	spec := ooc.Spec{
		Name:         "example1",
		Reference:    ooc.StandardMale(),
		OrganismMass: ooc.Kilograms(1e-6),
		Modules:      []ooc.ModuleSpec{{Organ: ooc.Liver, Kind: ooc.Layered}},
		Fluid:        ooc.MediumLowViscosity,
		ShearStress:  ooc.PascalsShear(1.5),
	}
	res, err := ooc.Derive(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("liver module mass: %.3g kg\n", res.Modules[0].Mass.Kilograms())
	// Output:
	// liver module mass: 1.43e-08 kg
}

// ExampleValidate runs the CFD-substitute validation and prints the
// aggregate deviations.
func ExampleValidate() {
	spec := ooc.Spec{
		Name:         "validate_example",
		Reference:    ooc.StandardMale(),
		OrganismMass: ooc.Kilograms(1e-6),
		Modules: []ooc.ModuleSpec{
			{Organ: ooc.Liver, Kind: ooc.Layered},
			{Organ: ooc.Brain, Kind: ooc.Layered},
		},
		Fluid:       ooc.MediumLowViscosity,
		ShearStress: ooc.PascalsShear(1.5),
	}
	design, err := ooc.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	// Self-consistency: under the designer's own model the design is
	// exact.
	self, err := ooc.Validate(design, ooc.ValidationOptions{
		Model:                 ooc.ModelApprox,
		DisableBendLosses:     true,
		DisableJunctionLosses: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("self-consistency deviation: %.4f%%\n", self.MaxFlowDeviation*100)
	// Output:
	// self-consistency deviation: 0.0000%
}
