package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"ooc/internal/eval"
	"ooc/internal/obs"
	"ooc/internal/sim"
	"ooc/internal/usecases"
)

// This file implements oocbench's machine-readable mode (-json) and
// the benchmark-regression gate built on top of it (-diff). A -json
// run evaluates the use-case grid only (no Fig. 4 prose, no series)
// and emits a benchDoc; a -diff run additionally loads a committed
// baseline document, compares the fresh run against it, and exits
// nonzero on regression. scripts/benchdiff.sh and the CI bench job
// are thin wrappers over -diff with the committed BENCH_5.json.

// benchSchema versions the document layout; bump on breaking changes
// so a stale baseline fails loudly instead of comparing garbage.
const benchSchema = "oocbench/v1"

// benchDoc is the machine-readable result of one grid evaluation.
type benchDoc struct {
	Schema      string       `json:"schema"`
	Grid        string       `json:"grid"`
	Model       string       `json:"model"`
	Scheme      string       `json:"scheme"`
	Workers     int          `json:"workers"`
	Instances   int          `json:"instances"`
	Failures    int          `json:"failures"`
	WallSeconds float64      `json:"wall_seconds"`
	Rows        []benchRow   `json:"rows"`
	Solvers     []benchSolve `json:"solvers,omitempty"`
	CacheHits   int64        `json:"cache_hits"`
	CacheMisses int64        `json:"cache_misses"`
}

// benchRow is one Table I row; deviation cells are percentages, like
// the human-readable table prints.
type benchRow struct {
	UseCase    string  `json:"use_case"`
	Modules    int     `json:"modules"`
	Instances  int     `json:"instances"`
	Failures   int     `json:"failures"`
	PerfAvgPct float64 `json:"perf_avg_pct"`
	PerfMaxPct float64 `json:"perf_max_pct"`
	FlowAvgPct float64 `json:"flow_avg_pct"`
	FlowMaxPct float64 `json:"flow_max_pct"`
}

// benchSolve aggregates one iterative solver's work over the run.
type benchSolve struct {
	Solver          string `json:"solver"`
	Solves          int    `json:"solves"`
	Converged       int    `json:"converged"`
	TotalIterations int    `json:"total_iterations"`
}

// runJSON evaluates the grid under a fresh collector and either emits
// the document (-json) or diffs it against a baseline (-diff).
func runJSON(ctx context.Context, cfg config, opt sim.Options, out, errOut io.Writer) error {
	col := obs.NewCollector()
	ctx = obs.WithCollector(ctx, col)
	// Cold cache: the hit/miss and iteration counts must describe this
	// run alone, or the baseline comparison depends on process history.
	sim.ResetCrossSectionCache()

	sweep := usecases.ExtendedSweep()
	gridName := "extended"
	if cfg.paperGrid {
		sweep = usecases.PaperSweep()
		gridName = "paper"
	}
	cases := usecases.All()
	instances := usecases.Instances(cases, sweep)

	start := time.Now()
	reps, _ := eval.Grid(ctx, instances, cfg.workers, opt)
	wall := time.Since(start)
	if err := ctx.Err(); err != nil {
		done := 0
		for _, r := range reps {
			if r != nil {
				done++
			}
		}
		return fmt.Errorf("aborted after %d of %d instances; no benchmark document emitted: %w",
			done, len(instances), err)
	}

	doc := benchDoc{
		Schema:      benchSchema,
		Grid:        gridName,
		Model:       opt.Model.String(),
		Scheme:      opt.Scheme.String(),
		Workers:     cfg.workers,
		Instances:   len(instances),
		WallSeconds: wall.Seconds(),
	}
	for _, row := range eval.Table(cases, instances, reps).Rows {
		doc.Failures += row.Failures
		doc.Rows = append(doc.Rows, benchRow{
			UseCase:    row.Chip,
			Modules:    row.Modules,
			Instances:  row.Instances,
			Failures:   row.Failures,
			PerfAvgPct: row.PerfAvg,
			PerfMaxPct: row.PerfMax,
			FlowAvgPct: row.FlowAvg,
			FlowMaxPct: row.FlowMax,
		})
	}
	s := col.Snapshot()
	doc.CacheHits, doc.CacheMisses = s.CacheHits, s.CacheMisses
	for _, sv := range s.Solvers {
		doc.Solvers = append(doc.Solvers, benchSolve{
			Solver:          sv.Solver,
			Solves:          sv.Solves,
			Converged:       sv.Converged,
			TotalIterations: sv.TotalIterations,
		})
	}

	if cfg.diffPath != "" {
		// Like run(): render into builders and flush each with a single
		// checked write, so no Fprint error is silently dropped.
		var body, warn strings.Builder
		diffErr := diffAgainst(cfg, doc, &body, &warn)
		if _, err := io.WriteString(out, body.String()); err != nil {
			return fmt.Errorf("writing diff report: %w", err)
		}
		if warn.Len() > 0 {
			if _, err := io.WriteString(errOut, warn.String()); err != nil {
				return fmt.Errorf("writing diff warnings: %w", err)
			}
		}
		return diffErr
	}
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("encoding benchmark document: %w", err)
	}
	raw = append(raw, '\n')
	if _, err := out.Write(raw); err != nil {
		return fmt.Errorf("writing benchmark document: %w", err)
	}
	return nil
}

// diffAgainst compares the fresh document against the baseline at
// cfg.diffPath. Deviation cells gate hard (they are bit-deterministic
// for a fixed model/scheme/grid, so the tolerance only absorbs
// cross-platform floating-point variation); wall clock and iteration
// counts gate on ratio bands. Every violation is reported before the
// nonzero exit.
func diffAgainst(cfg config, fresh benchDoc, out, errOut *strings.Builder) error {
	raw, err := os.ReadFile(cfg.diffPath)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base benchDoc
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", cfg.diffPath, err)
	}
	if base.Schema != benchSchema {
		return fmt.Errorf("baseline %s has schema %q, this binary speaks %q — regenerate it with -json",
			cfg.diffPath, base.Schema, benchSchema)
	}
	if base.Grid != fresh.Grid || base.Model != fresh.Model || base.Scheme != fresh.Scheme {
		return fmt.Errorf("baseline is grid=%s model=%s scheme=%s but this run is grid=%s model=%s scheme=%s — not comparable",
			base.Grid, base.Model, base.Scheme, fresh.Grid, fresh.Model, fresh.Scheme)
	}

	var regressions int
	fail := func(format string, args ...any) {
		regressions++
		fmt.Fprintf(errOut, "benchdiff: regression: "+format+"\n", args...)
	}

	if fresh.Failures > base.Failures {
		fail("instance failures rose from %d to %d", base.Failures, fresh.Failures)
	}
	baseRows := make(map[string]benchRow, len(base.Rows))
	for _, r := range base.Rows {
		baseRows[r.UseCase] = r
	}
	for _, r := range fresh.Rows {
		b, ok := baseRows[r.UseCase]
		if !ok {
			fmt.Fprintf(errOut, "benchdiff: note: use case %q absent from baseline, skipping\n", r.UseCase)
			continue
		}
		for _, cell := range []struct {
			name        string
			fresh, base float64
		}{
			{"perf avg", r.PerfAvgPct, b.PerfAvgPct},
			{"perf max", r.PerfMaxPct, b.PerfMaxPct},
			{"flow avg", r.FlowAvgPct, b.FlowAvgPct},
			{"flow max", r.FlowMaxPct, b.FlowMaxPct},
		} {
			if d := cell.fresh - cell.base; d > cfg.diffAccTol || -d > cfg.diffAccTol {
				fail("%s %s drifted %.4f → %.4f pct (tolerance %.4f)",
					r.UseCase, cell.name, cell.base, cell.fresh, cfg.diffAccTol)
			}
		}
	}

	if base.WallSeconds > 0 && fresh.WallSeconds > cfg.diffWallTol*base.WallSeconds {
		fail("wall clock %.2fs exceeds %.1f× baseline %.2fs",
			fresh.WallSeconds, cfg.diffWallTol, base.WallSeconds)
	}
	baseSolvers := make(map[string]benchSolve, len(base.Solvers))
	for _, sv := range base.Solvers {
		baseSolvers[sv.Solver] = sv
	}
	for _, sv := range fresh.Solvers {
		b, ok := baseSolvers[sv.Solver]
		if !ok || b.TotalIterations == 0 {
			fmt.Fprintf(errOut, "benchdiff: note: solver %q has no baseline iterations, skipping\n", sv.Solver)
			continue
		}
		if float64(sv.TotalIterations) > cfg.diffIterTol*float64(b.TotalIterations) {
			fail("solver %s iterations %d exceed %.2f× baseline %d",
				sv.Solver, sv.TotalIterations, cfg.diffIterTol, b.TotalIterations)
		}
	}

	if regressions > 0 {
		return fmt.Errorf("%d benchmark regression(s) vs %s", regressions, cfg.diffPath)
	}
	fmt.Fprintf(out, "benchdiff: OK vs %s (%d instances, wall %.2fs vs baseline %.2fs)\n",
		cfg.diffPath, fresh.Instances, fresh.WallSeconds, base.WallSeconds)
	return nil
}
