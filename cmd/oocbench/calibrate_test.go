package main

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"ooc/internal/modelsel"
)

// TestCalibrateDeterministicAcrossWorkers: the calibration document is
// byte-identical for serial and parallel sweeps — the artifact in git
// must not depend on who generated it or on how many cores they had.
func TestCalibrateDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full 5-rung paper-grid sweep")
	}
	ctx := context.Background()
	render := func(workers int) string {
		var out, errOut bytes.Buffer
		err := runCalibrate(ctx, config{calibrate: true, workers: workers}, &out, &errOut)
		if err != nil {
			t.Fatalf("workers=%d: %v (stderr: %s)", workers, err, errOut.String())
		}
		return out.String()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Fatalf("calibration document differs between -workers 1 and -workers 8")
	}
	if _, err := modelsel.Parse([]byte(serial)); err != nil {
		t.Fatalf("generated document fails validation: %v", err)
	}
}

// TestCalibrateDiffSelfAndDrift: -calibrate -diff passes against the
// committed artifact (the CI gate must be green on a clean tree) and
// fails with a drift report against a tampered baseline.
func TestCalibrateDiffSelfAndDrift(t *testing.T) {
	if testing.Short() {
		t.Skip("full 5-rung paper-grid sweep")
	}
	ctx := context.Background()
	committed := "../../internal/modelsel/CALIB.json"
	var out, errOut bytes.Buffer
	err := runCalibrate(ctx, config{calibrate: true, diffPath: committed, calibTol: 1e-6}, &out, &errOut)
	if err != nil {
		t.Fatalf("diff vs committed artifact: %v\nstderr: %s", err, errOut.String())
	}
	if !strings.Contains(out.String(), "calibdiff: OK") {
		t.Fatalf("diff success not reported: %s", out.String())
	}

	// Tamper with one bound well past the tolerance: the diff must
	// fail, report the drifted cell, and name the baseline path in the
	// regeneration hint.
	base, err := modelsel.ParseFile(committed)
	if err != nil {
		t.Fatal(err)
	}
	doc := base.Doc()
	fresh := doc
	fresh.Rungs = append([]modelsel.RungDoc(nil), doc.Rungs...)
	fresh.Rungs[0].Global.Flow += 1
	out.Reset()
	errOut.Reset()
	err = calibDiff(config{diffPath: committed, calibTol: 1e-6}, fresh, &out, &errOut)
	if err == nil {
		t.Fatal("tampered bounds passed the diff")
	}
	if !strings.Contains(errOut.String(), "calibdiff: drift") {
		t.Fatalf("drift not reported to stderr: %s", errOut.String())
	}
	if !strings.Contains(err.Error(), committed) {
		t.Fatalf("regeneration hint does not name the baseline path: %v", err)
	}
}

// TestBudgetFlagSelection: -budget picks a rung from the embedded
// table, threads the budget into the options, and loses to an explicit
// -model.
func TestBudgetFlagSelection(t *testing.T) {
	opt, sel, err := config{budget: 0.01}.simOptions()
	if err != nil {
		t.Fatal(err)
	}
	if sel == nil {
		t.Fatal("budget set but no rung selected")
	}
	if opt.Model != sel.Model || opt.NumericResolution != sel.Resolution {
		t.Fatalf("options %v@%d do not match selected rung %s", opt.Model, opt.NumericResolution, sel.Name)
	}
	if fmt.Sprintf("%g", opt.ErrorBudget) != "0.01" {
		t.Fatalf("ErrorBudget %g not threaded into options", opt.ErrorBudget)
	}

	// Explicit -model wins: no selection, no budget in the options.
	opt, sel, err = config{budget: 0.01, model: "numeric"}.simOptions()
	if err != nil {
		t.Fatal(err)
	}
	if sel != nil {
		t.Fatalf("explicit -model still selected rung %s", sel.Name)
	}
	if opt.ErrorBudget != 0 {
		t.Fatalf("explicit -model run still carries ErrorBudget %g", opt.ErrorBudget)
	}

	// An unmeetable budget surfaces the tightest achievable rung.
	_, _, err = config{budget: 1e-9}.simOptions()
	if err == nil || !strings.Contains(err.Error(), "tightest") {
		t.Fatalf("unmeetable budget error does not name the tightest rung: %v", err)
	}
}
