// Command oocbench reproduces the paper's evaluation (Sec. IV): it
// generates every OoC instance of the use-case × parameter grid,
// validates each generated design with the CFD-substitute pipeline,
// and prints Table I (average and worst-case deviations in perfusion
// and module flow rate per use case) as well as the Fig. 4 per-module
// flow listing for male_simple.
//
// The grid is evaluated through the shared worker pool
// (internal/parallel via internal/eval): rows are aggregated in
// instance-index order and every per-instance failure is preserved,
// so the output is byte-identical for any -workers value.
//
// The whole run is context-driven: Ctrl-C (SIGINT/SIGTERM) or an
// elapsed -timeout budget cancels the evaluation cooperatively, the
// rows that finished are still printed, and the process exits
// nonzero with the cancellation cause.
//
// Usage:
//
//	oocbench              # extended 288-instance grid (matches the paper's count)
//	oocbench -paper-grid  # the literal 3×3×3 grid from the text (216 instances)
//	oocbench -fig4        # only the Fig. 4 validation
//	oocbench -csv         # machine-readable Table I
//	oocbench -workers 1   # serial evaluation (default: GOMAXPROCS)
//	oocbench -timeout 30s # per-run deadline budget
//	oocbench -stats       # numeric-model run with solver/cache telemetry
//	oocbench -scheme mg   # force the multigrid Poisson backend (numeric model)
//	oocbench -json        # machine-readable benchmark document (grid only)
//	oocbench -json -diff BENCH_5.json  # regression gate vs a committed baseline
//	oocbench -budget 0.02 # auto-select the cheapest model within a 2% error budget
//	oocbench -calibrate > internal/modelsel/CALIB.json  # regenerate the calibration artifact
//	oocbench -calibrate -diff internal/modelsel/CALIB.json  # CI drift gate
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ooc/internal/core"
	"ooc/internal/eval"
	"ooc/internal/modelsel"
	"ooc/internal/obs"
	"ooc/internal/report"
	"ooc/internal/sim"
	"ooc/internal/usecases"
)

// config collects the command-line switches so tests can drive run
// directly.
type config struct {
	paperGrid bool
	fig4Only  bool
	csv       bool
	baseline  bool
	series    bool
	workers   int
	timeout   time.Duration
	stats     bool
	model     string
	scheme    string
	jsonOut   bool
	diffPath  string
	budget    float64
	calibrate bool
	// diff tolerances; see cmd/oocbench/json.go and calibrate.go.
	diffAccTol  float64
	diffWallTol float64
	diffIterTol float64
	calibTol    float64
}

// simOptions resolves the -model, -scheme and -budget flags. A -model
// of "auto" keeps the historical analytic-exact validation, except
// under -stats where the numeric model is selected so the telemetry
// has iterative solves and cache traffic to report, and under -budget
// where the cheapest calibrated rung within the error budget is
// selected (an explicit -model always wins over -budget); everything
// else goes through the shared sim.ParseModel / sim.ParseScheme
// spelling checks. The selected rung, when any, rides along for the
// run header.
func (c config) simOptions() (sim.Options, *modelsel.Rung, error) {
	opt := sim.DefaultOptions()
	scheme, err := sim.ParseScheme(c.scheme)
	if err != nil {
		return opt, nil, fmt.Errorf("-scheme: %w", err)
	}
	opt.Scheme = scheme
	explicitModel := c.model != "" && c.model != "auto"
	if c.budget != 0 && !explicitModel {
		// The grid spans every use case, so selection goes against the
		// global (all-use-case) calibrated bounds.
		table, err := modelsel.Default()
		if err != nil {
			return opt, nil, err
		}
		rung, err := table.Select("", c.budget)
		if err != nil {
			return opt, nil, fmt.Errorf("-budget: %w", err)
		}
		rung.Apply(&opt)
		opt.ErrorBudget = c.budget
		return opt, &rung, nil
	}
	if !explicitModel {
		if c.stats {
			opt.Model = sim.ModelNumeric
		}
		return opt, nil, nil
	}
	m, err := sim.ParseModel(c.model)
	if err != nil {
		return opt, nil, fmt.Errorf("-model: %w (or auto)", err)
	}
	opt.Model = m
	if m == sim.ModelDynamic {
		// The benchmark compares settled final states, so the documented
		// transient defaults are the right configuration.
		opt.Dynamic = sim.DefaultDynamicOptions()
	}
	return opt, nil, nil
}

func main() {
	var cfg config
	flag.BoolVar(&cfg.paperGrid, "paper-grid", false, "use the literal 3×3×3 parameter grid (216 instances) instead of the 288-instance extended grid")
	flag.BoolVar(&cfg.fig4Only, "fig4", false, "only run the Fig. 4 male_simple validation")
	flag.BoolVar(&cfg.csv, "csv", false, "emit Table I as CSV")
	flag.BoolVar(&cfg.baseline, "baseline", false, "also evaluate the no-pressure-correction baseline on the Fig. 4 instance")
	flag.BoolVar(&cfg.series, "series", false, "also print deviation-vs-parameter data series (spacing, viscosity, shear)")
	flag.IntVar(&cfg.workers, "workers", 0, "worker-pool size for the grid evaluation (0 = GOMAXPROCS)")
	flag.DurationVar(&cfg.timeout, "timeout", 0, "overall deadline for the run (0 = none); on expiry partial results are flushed and the exit status is nonzero")
	flag.BoolVar(&cfg.stats, "stats", false, "print solver/cache telemetry after the report (selects the numeric resistance model under -model auto)")
	flag.StringVar(&cfg.model, "model", "auto", "validation resistance model: auto or one of "+sim.ModelNames)
	flag.StringVar(&cfg.scheme, "scheme", "auto", "Poisson backend for the numeric model: auto, sor or mg")
	flag.BoolVar(&cfg.jsonOut, "json", false, "emit a machine-readable benchmark document (grid rows + solver/cache telemetry) instead of the report")
	flag.StringVar(&cfg.diffPath, "diff", "", "compare a fresh -json run against the baseline document at this path; exit nonzero on regression")
	flag.Float64Var(&cfg.budget, "budget", 0, "auto-select the cheapest model whose calibrated worst-case deviation fits this fraction (0 disables; an explicit -model wins)")
	flag.BoolVar(&cfg.calibrate, "calibrate", false, "emit the modelsel calibration document (paper grid swept across every ladder rung plus the reference) instead of the report; with -diff, gate on drift vs a committed CALIB.json")
	flag.Float64Var(&cfg.diffAccTol, "diff-acc-tol", 0.01, "-diff: max allowed drift per deviation cell, in percentage points")
	flag.Float64Var(&cfg.diffWallTol, "diff-wall-tol", 2.0, "-diff: max allowed wall-clock ratio vs baseline")
	flag.Float64Var(&cfg.diffIterTol, "diff-iter-tol", 1.25, "-diff: max allowed per-solver iteration ratio vs baseline")
	flag.Float64Var(&cfg.calibTol, "calib-tol", 1e-6, "-calibrate -diff: max allowed absolute drift per calibrated bound")
	flag.Parse()

	// A typo'd -model or -scheme (or an out-of-range -budget, or a flag
	// combination with two output formats) is a usage error: fail
	// before the grid run starts, with the valid spellings, and exit 2
	// like flag package parse failures do.
	if _, _, err := cfg.simOptions(); err != nil {
		fmt.Fprintln(os.Stderr, "oocbench:", err)
		fmt.Fprintf(os.Stderr, "usage: oocbench [-model {auto, %s}] [-scheme {%s}] [-budget f] [flags]\n", sim.ModelNames, sim.SchemeNames)
		os.Exit(2)
	}
	if cfg.calibrate && cfg.jsonOut {
		fmt.Fprintln(os.Stderr, "oocbench: -calibrate and -json are distinct documents; pick one")
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}

	if err := run(ctx, cfg, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "oocbench:", err)
		os.Exit(1)
	}
}

// run renders the full report into in-memory builders and flushes each
// with a single checked write, so no Fprint error is silently dropped.
// On cancellation the body rendered so far — plus the telemetry
// summary under -stats — is still flushed before the error is
// returned, so an aborted run keeps its partial results.
func run(ctx context.Context, cfg config, out, errOut io.Writer) error {
	if cfg.calibrate {
		return runCalibrate(ctx, cfg, out, errOut)
	}
	opt, sel, err := cfg.simOptions()
	if err != nil {
		return err
	}
	if cfg.budget != 0 {
		// The selection decision goes to stderr so -json stdout stays a
		// pure document.
		note := "oocbench: explicit -model wins; -budget ignored\n"
		if sel != nil {
			note = fmt.Sprintf("oocbench: error budget %g selected %s (calibrated worst-case deviation %.6g)\n",
				cfg.budget, sel.Name, sel.Global.Worst())
		}
		if _, err := io.WriteString(errOut, note); err != nil {
			return fmt.Errorf("writing selection note: %w", err)
		}
	}
	if cfg.jsonOut || cfg.diffPath != "" {
		return runJSON(ctx, cfg, opt, out, errOut)
	}
	if cfg.stats {
		// A fresh per-run collector (travelling via ctx) keeps the
		// telemetry scoped to this run; the cache is reset so the
		// hit/miss counts describe exactly this grid.
		ctx = obs.WithCollector(ctx, obs.NewCollector())
		sim.ResetCrossSectionCache()
	}
	var body, warn strings.Builder
	renderErr := render(ctx, cfg, opt, &body, &warn)
	if cfg.stats {
		fmt.Fprintf(&body, "\n%s", obs.FromContext(ctx).Snapshot().Format())
	}
	if _, err := io.WriteString(out, body.String()); err != nil {
		return fmt.Errorf("writing report: %w", err)
	}
	if warn.Len() > 0 {
		if _, err := io.WriteString(errOut, warn.String()); err != nil {
			return fmt.Errorf("writing warnings: %w", err)
		}
	}
	return renderErr
}

func render(ctx context.Context, cfg config, opt sim.Options, out, errOut *strings.Builder) error {
	// Fig. 4: the representative male_simple instance.
	fig4 := usecases.Fig4Instance()
	d, err := core.Generate(fig4.Spec)
	if err != nil {
		return fmt.Errorf("fig4 generate: %w", err)
	}
	rep, err := sim.ValidateContext(ctx, d, opt)
	if err != nil {
		return fmt.Errorf("fig4 validate: %w", err)
	}
	fmt.Fprintln(out, report.FormatFig4(rep))
	if cfg.baseline {
		nd, err := core.GenerateNaive(fig4.Spec)
		if err != nil {
			return fmt.Errorf("baseline generate: %w", err)
		}
		nrep, err := sim.ValidateContext(ctx, nd, opt)
		if err != nil {
			return fmt.Errorf("baseline validate: %w", err)
		}
		fmt.Fprintf(out, "baseline (no pressure correction): flow dev avg %.1f%% max %.1f%% | perf dev avg %.1f%% max %.1f%%\n",
			nrep.AvgFlowDeviation*100, nrep.MaxFlowDeviation*100,
			nrep.AvgPerfDeviation*100, nrep.MaxPerfDeviation*100)
		fmt.Fprintf(out, "method value: worst flow deviation improves %.0f× (%.1f%% → %.2f%%)\n\n",
			nrep.MaxFlowDeviation/rep.MaxFlowDeviation,
			nrep.MaxFlowDeviation*100, rep.MaxFlowDeviation*100)
	}
	if cfg.fig4Only {
		return nil
	}

	sweep := usecases.ExtendedSweep()
	gridName := "extended 3×3×4 grid (288 instances)"
	if cfg.paperGrid {
		sweep = usecases.PaperSweep()
		gridName = "paper 3×3×3 grid (216 instances)"
	}
	cases := usecases.All()
	fmt.Fprintf(out, "Table I — %d use cases on the %s\n\n", len(cases), gridName)

	instances := usecases.Instances(cases, sweep)
	reps, evalErr := eval.Grid(ctx, instances, cfg.workers, opt)
	if evalErr != nil && ctx.Err() == nil {
		// Every per-instance failure, joined in index order; failed
		// instances are also counted in their use case's table row.
		fmt.Fprintln(errOut, "warning: instance failures:")
		fmt.Fprintln(errOut, evalErr)
	}

	tbl := eval.Table(cases, instances, reps)
	if cfg.csv {
		fmt.Fprint(out, tbl.CSV())
	} else {
		fmt.Fprint(out, tbl.Format())
	}
	if err := ctx.Err(); err != nil {
		// The table above holds whatever subset completed; report the
		// abort so the exit status reflects the truncated run.
		done := 0
		for _, r := range reps {
			if r != nil {
				done++
			}
		}
		return fmt.Errorf("partial results: %d of %d instances evaluated before abort: %w",
			done, len(instances), err)
	}

	if cfg.series {
		fmt.Fprintln(out)
		var spacing, visc, shear []float64
		var seriesReps []*sim.Report
		for i, rep := range reps {
			if rep == nil {
				continue
			}
			in := instances[i]
			spacing = append(spacing, in.Spacing.Metres())
			visc = append(visc, float64(in.Fluid.Viscosity))
			shear = append(shear, float64(in.Shear))
			seriesReps = append(seriesReps, rep)
		}
		for _, def := range []struct {
			name string
			keys []float64
		}{
			{"spacing [m]", spacing},
			{"viscosity [Pa.s]", visc},
			{"shear [Pa]", shear},
		} {
			s, err := report.AggregateSeries(def.name, def.keys, seriesReps)
			if err != nil {
				return err
			}
			fmt.Fprintln(out, report.FormatSeries(s))
		}
	}
	return nil
}
