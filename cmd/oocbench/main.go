// Command oocbench reproduces the paper's evaluation (Sec. IV): it
// generates every OoC instance of the use-case × parameter grid,
// validates each generated design with the CFD-substitute pipeline,
// and prints Table I (average and worst-case deviations in perfusion
// and module flow rate per use case) as well as the Fig. 4 per-module
// flow listing for male_simple.
//
// Usage:
//
//	oocbench              # extended 288-instance grid (matches the paper's count)
//	oocbench -paper-grid  # the literal 3×3×3 grid from the text (216 instances)
//	oocbench -fig4        # only the Fig. 4 validation
//	oocbench -csv         # machine-readable Table I
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"

	"ooc/internal/core"
	"ooc/internal/report"
	"ooc/internal/sim"
	"ooc/internal/usecases"
)

func main() {
	paperGrid := flag.Bool("paper-grid", false, "use the literal 3×3×3 parameter grid (216 instances) instead of the 288-instance extended grid")
	fig4Only := flag.Bool("fig4", false, "only run the Fig. 4 male_simple validation")
	csv := flag.Bool("csv", false, "emit Table I as CSV")
	baseline := flag.Bool("baseline", false, "also evaluate the no-pressure-correction baseline on the Fig. 4 instance")
	series := flag.Bool("series", false, "also print deviation-vs-parameter data series (spacing, viscosity, shear)")
	flag.Parse()

	if err := run(*paperGrid, *fig4Only, *csv, *baseline, *series); err != nil {
		fmt.Fprintln(os.Stderr, "oocbench:", err)
		os.Exit(1)
	}
}

func run(paperGrid, fig4Only, csv, baseline, series bool) error {
	// Fig. 4: the representative male_simple instance.
	fig4 := usecases.Fig4Instance()
	d, err := core.Generate(fig4.Spec)
	if err != nil {
		return fmt.Errorf("fig4 generate: %w", err)
	}
	rep, err := sim.Validate(d, sim.Options{})
	if err != nil {
		return fmt.Errorf("fig4 validate: %w", err)
	}
	fmt.Println(report.FormatFig4(rep))
	if baseline {
		nd, err := core.GenerateNaive(fig4.Spec)
		if err != nil {
			return fmt.Errorf("baseline generate: %w", err)
		}
		nrep, err := sim.Validate(nd, sim.Options{})
		if err != nil {
			return fmt.Errorf("baseline validate: %w", err)
		}
		fmt.Printf("baseline (no pressure correction): flow dev avg %.1f%% max %.1f%% | perf dev avg %.1f%% max %.1f%%\n",
			nrep.AvgFlowDeviation*100, nrep.MaxFlowDeviation*100,
			nrep.AvgPerfDeviation*100, nrep.MaxPerfDeviation*100)
		fmt.Printf("method value: worst flow deviation improves %.0f× (%.1f%% → %.2f%%)\n\n",
			nrep.MaxFlowDeviation/rep.MaxFlowDeviation,
			nrep.MaxFlowDeviation*100, rep.MaxFlowDeviation*100)
	}
	if fig4Only {
		return nil
	}

	sweep := usecases.ExtendedSweep()
	gridName := "extended 3×3×4 grid (288 instances)"
	if paperGrid {
		sweep = usecases.PaperSweep()
		gridName = "paper 3×3×3 grid (216 instances)"
	}
	cases := usecases.All()
	fmt.Printf("Table I — %d use cases on the %s\n\n", len(cases), gridName)

	type result struct {
		useCase string
		rep     *sim.Report
		err     error
	}
	instances := usecases.Instances(cases, sweep)
	results := make([]result, len(instances))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, in := range instances {
		wg.Add(1)
		go func(i int, in usecases.Instance) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			d, err := core.Generate(in.Spec)
			if err != nil {
				results[i] = result{useCase: in.UseCase, err: fmt.Errorf("%s: generate: %w", in.Label(), err)}
				return
			}
			rep, err := sim.Validate(d, sim.Options{})
			if err != nil {
				results[i] = result{useCase: in.UseCase, err: fmt.Errorf("%s: validate: %w", in.Label(), err)}
				return
			}
			results[i] = result{useCase: in.UseCase, rep: rep}
		}(i, in)
	}
	wg.Wait()

	var tbl report.Table
	for _, uc := range cases {
		var reps []*sim.Report
		failures := 0
		for _, r := range results {
			if r.useCase != uc.Name {
				continue
			}
			if r.err != nil {
				failures++
				fmt.Fprintln(os.Stderr, "warning:", r.err)
				continue
			}
			reps = append(reps, r.rep)
		}
		tbl.Rows = append(tbl.Rows, report.Aggregate(uc.Name, uc.ModuleCount, reps, failures))
	}
	tbl.Sort()
	if csv {
		fmt.Print(tbl.CSV())
	} else {
		fmt.Print(tbl.Format())
	}

	if series {
		fmt.Println()
		var spacing, visc, shear []float64
		var reps []*sim.Report
		for i, r := range results {
			if r.rep == nil {
				continue
			}
			in := instances[i]
			spacing = append(spacing, in.Spacing.Metres())
			visc = append(visc, float64(in.Fluid.Viscosity))
			shear = append(shear, float64(in.Shear))
			reps = append(reps, r.rep)
		}
		for _, def := range []struct {
			name string
			keys []float64
		}{
			{"spacing [m]", spacing},
			{"viscosity [Pa.s]", visc},
			{"shear [Pa]", shear},
		} {
			s, err := report.AggregateSeries(def.name, def.keys, reps)
			if err != nil {
				return err
			}
			fmt.Println(report.FormatSeries(s))
		}
	}
	return nil
}
