// Command oocbench reproduces the paper's evaluation (Sec. IV): it
// generates every OoC instance of the use-case × parameter grid,
// validates each generated design with the CFD-substitute pipeline,
// and prints Table I (average and worst-case deviations in perfusion
// and module flow rate per use case) as well as the Fig. 4 per-module
// flow listing for male_simple.
//
// The grid is evaluated through the shared worker pool
// (internal/parallel via internal/eval): rows are aggregated in
// instance-index order and every per-instance failure is preserved,
// so the output is byte-identical for any -workers value.
//
// Usage:
//
//	oocbench              # extended 288-instance grid (matches the paper's count)
//	oocbench -paper-grid  # the literal 3×3×3 grid from the text (216 instances)
//	oocbench -fig4        # only the Fig. 4 validation
//	oocbench -csv         # machine-readable Table I
//	oocbench -workers 1   # serial evaluation (default: GOMAXPROCS)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ooc/internal/core"
	"ooc/internal/eval"
	"ooc/internal/report"
	"ooc/internal/sim"
	"ooc/internal/usecases"
)

// config collects the command-line switches so tests can drive run
// directly.
type config struct {
	paperGrid bool
	fig4Only  bool
	csv       bool
	baseline  bool
	series    bool
	workers   int
}

func main() {
	var cfg config
	flag.BoolVar(&cfg.paperGrid, "paper-grid", false, "use the literal 3×3×3 parameter grid (216 instances) instead of the 288-instance extended grid")
	flag.BoolVar(&cfg.fig4Only, "fig4", false, "only run the Fig. 4 male_simple validation")
	flag.BoolVar(&cfg.csv, "csv", false, "emit Table I as CSV")
	flag.BoolVar(&cfg.baseline, "baseline", false, "also evaluate the no-pressure-correction baseline on the Fig. 4 instance")
	flag.BoolVar(&cfg.series, "series", false, "also print deviation-vs-parameter data series (spacing, viscosity, shear)")
	flag.IntVar(&cfg.workers, "workers", 0, "worker-pool size for the grid evaluation (0 = GOMAXPROCS)")
	flag.Parse()

	if err := run(cfg, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "oocbench:", err)
		os.Exit(1)
	}
}

// run renders the full report into in-memory builders and flushes each
// with a single checked write, so no Fprint error is silently dropped.
func run(cfg config, out, errOut io.Writer) error {
	var body, warn strings.Builder
	if err := render(cfg, &body, &warn); err != nil {
		return err
	}
	if _, err := io.WriteString(out, body.String()); err != nil {
		return fmt.Errorf("writing report: %w", err)
	}
	if warn.Len() > 0 {
		if _, err := io.WriteString(errOut, warn.String()); err != nil {
			return fmt.Errorf("writing warnings: %w", err)
		}
	}
	return nil
}

func render(cfg config, out, errOut *strings.Builder) error {
	// Fig. 4: the representative male_simple instance.
	fig4 := usecases.Fig4Instance()
	d, err := core.Generate(fig4.Spec)
	if err != nil {
		return fmt.Errorf("fig4 generate: %w", err)
	}
	rep, err := sim.Validate(d, sim.Options{})
	if err != nil {
		return fmt.Errorf("fig4 validate: %w", err)
	}
	fmt.Fprintln(out, report.FormatFig4(rep))
	if cfg.baseline {
		nd, err := core.GenerateNaive(fig4.Spec)
		if err != nil {
			return fmt.Errorf("baseline generate: %w", err)
		}
		nrep, err := sim.Validate(nd, sim.Options{})
		if err != nil {
			return fmt.Errorf("baseline validate: %w", err)
		}
		fmt.Fprintf(out, "baseline (no pressure correction): flow dev avg %.1f%% max %.1f%% | perf dev avg %.1f%% max %.1f%%\n",
			nrep.AvgFlowDeviation*100, nrep.MaxFlowDeviation*100,
			nrep.AvgPerfDeviation*100, nrep.MaxPerfDeviation*100)
		fmt.Fprintf(out, "method value: worst flow deviation improves %.0f× (%.1f%% → %.2f%%)\n\n",
			nrep.MaxFlowDeviation/rep.MaxFlowDeviation,
			nrep.MaxFlowDeviation*100, rep.MaxFlowDeviation*100)
	}
	if cfg.fig4Only {
		return nil
	}

	sweep := usecases.ExtendedSweep()
	gridName := "extended 3×3×4 grid (288 instances)"
	if cfg.paperGrid {
		sweep = usecases.PaperSweep()
		gridName = "paper 3×3×3 grid (216 instances)"
	}
	cases := usecases.All()
	fmt.Fprintf(out, "Table I — %d use cases on the %s\n\n", len(cases), gridName)

	instances := usecases.Instances(cases, sweep)
	reps, evalErr := eval.Grid(instances, cfg.workers, sim.Options{})
	if evalErr != nil {
		// Every per-instance failure, joined in index order; failed
		// instances are also counted in their use case's table row.
		fmt.Fprintln(errOut, "warning: instance failures:")
		fmt.Fprintln(errOut, evalErr)
	}

	tbl := eval.Table(cases, instances, reps)
	if cfg.csv {
		fmt.Fprint(out, tbl.CSV())
	} else {
		fmt.Fprint(out, tbl.Format())
	}

	if cfg.series {
		fmt.Fprintln(out)
		var spacing, visc, shear []float64
		var seriesReps []*sim.Report
		for i, rep := range reps {
			if rep == nil {
				continue
			}
			in := instances[i]
			spacing = append(spacing, in.Spacing.Metres())
			visc = append(visc, float64(in.Fluid.Viscosity))
			shear = append(shear, float64(in.Shear))
			seriesReps = append(seriesReps, rep)
		}
		for _, def := range []struct {
			name string
			keys []float64
		}{
			{"spacing [m]", spacing},
			{"viscosity [Pa.s]", visc},
			{"shear [Pa]", shear},
		} {
			s, err := report.AggregateSeries(def.name, def.keys, seriesReps)
			if err != nil {
				return err
			}
			fmt.Fprintln(out, report.FormatSeries(s))
		}
	}
	return nil
}
