package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestParallelOutputByteIdentical: `oocbench -csv` must print the same
// bytes whether the grid is evaluated serially or on the pool — the
// determinism guarantee the evaluation pipeline advertises. The paper
// grid (216 instances) keeps the test fast while still exercising
// every use case.
func TestParallelOutputByteIdentical(t *testing.T) {
	render := func(workers int) (string, string) {
		var out, errOut bytes.Buffer
		cfg := config{paperGrid: true, csv: true, workers: workers}
		if err := run(cfg, &out, &errOut); err != nil {
			t.Fatal(err)
		}
		return out.String(), errOut.String()
	}
	serialOut, serialErr := render(1)
	if serialErr != "" {
		t.Fatalf("unexpected warnings on the serial run:\n%s", serialErr)
	}
	if !strings.Contains(serialOut, "Table I") {
		t.Fatal("serial run did not render Table I")
	}
	for _, workers := range []int{0, 4} {
		parOut, parErr := render(workers)
		if parErr != "" {
			t.Fatalf("unexpected warnings with %d workers:\n%s", workers, parErr)
		}
		if parOut != serialOut {
			t.Fatalf("output with workers=%d differs from the serial run", workers)
		}
	}
}

// TestCSVAndTableShareAggregation: the -csv switch must change only
// the rendering, not the evaluated data.
func TestCSVAndTableShareAggregation(t *testing.T) {
	var csvOut, tblOut, errOut bytes.Buffer
	if err := run(config{paperGrid: true, csv: true, workers: 0}, &csvOut, &errOut); err != nil {
		t.Fatal(err)
	}
	if err := run(config{paperGrid: true, workers: 0}, &tblOut, &errOut); err != nil {
		t.Fatal(err)
	}
	// Both outputs carry every use-case name.
	for _, name := range []string{"male_simple", "female_simple", "male_gi_tract", "male_kidney", "generic1", "generic4"} {
		if !strings.Contains(csvOut.String(), name) {
			t.Errorf("CSV output lacks %s", name)
		}
		if !strings.Contains(tblOut.String(), name) {
			t.Errorf("table output lacks %s", name)
		}
	}
}

// TestFig4Only: -fig4 must stop before the grid evaluation.
func TestFig4Only(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run(config{fig4Only: true}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "Table I") {
		t.Fatal("-fig4 must not evaluate the grid")
	}
}
