package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ooc/internal/sim"
)

// TestParallelOutputByteIdentical: `oocbench -csv` must print the same
// bytes whether the grid is evaluated serially or on the pool — the
// determinism guarantee the evaluation pipeline advertises. The paper
// grid (216 instances) keeps the test fast while still exercising
// every use case.
func TestParallelOutputByteIdentical(t *testing.T) {
	render := func(workers int) (string, string) {
		var out, errOut bytes.Buffer
		cfg := config{paperGrid: true, csv: true, workers: workers}
		if err := run(context.Background(), cfg, &out, &errOut); err != nil {
			t.Fatal(err)
		}
		return out.String(), errOut.String()
	}
	serialOut, serialErr := render(1)
	if serialErr != "" {
		t.Fatalf("unexpected warnings on the serial run:\n%s", serialErr)
	}
	if !strings.Contains(serialOut, "Table I") {
		t.Fatal("serial run did not render Table I")
	}
	for _, workers := range []int{0, 4} {
		parOut, parErr := render(workers)
		if parErr != "" {
			t.Fatalf("unexpected warnings with %d workers:\n%s", workers, parErr)
		}
		if parOut != serialOut {
			t.Fatalf("output with workers=%d differs from the serial run", workers)
		}
	}
}

// TestCSVAndTableShareAggregation: the -csv switch must change only
// the rendering, not the evaluated data.
func TestCSVAndTableShareAggregation(t *testing.T) {
	var csvOut, tblOut, errOut bytes.Buffer
	if err := run(context.Background(), config{paperGrid: true, csv: true, workers: 0}, &csvOut, &errOut); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), config{paperGrid: true, workers: 0}, &tblOut, &errOut); err != nil {
		t.Fatal(err)
	}
	// Both outputs carry every use-case name.
	for _, name := range []string{"male_simple", "female_simple", "male_gi_tract", "male_kidney", "generic1", "generic4"} {
		if !strings.Contains(csvOut.String(), name) {
			t.Errorf("CSV output lacks %s", name)
		}
		if !strings.Contains(tblOut.String(), name) {
			t.Errorf("table output lacks %s", name)
		}
	}
}

// TestFig4Only: -fig4 must stop before the grid evaluation.
func TestFig4Only(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run(context.Background(), config{fig4Only: true}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "Table I") {
		t.Fatal("-fig4 must not evaluate the grid")
	}
}

// TestExpiredDeadlineFailsFastWithDeadlineError: an already-expired
// budget (the `-timeout 1ms` smoke in scripts/check.sh) must return
// promptly with an error that wraps context.DeadlineExceeded and
// mentions the deadline, not hang or report a generic solver failure.
func TestExpiredDeadlineFailsFastWithDeadlineError(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()

	var out, errOut bytes.Buffer
	start := time.Now()
	err := run(ctx, config{paperGrid: true}, &out, &errOut)
	if err == nil {
		t.Fatal("expired deadline must fail the run")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap context.DeadlineExceeded", err)
	}
	if !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("error %q does not mention the deadline", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("expired-deadline run took %v, want < 1s", elapsed)
	}
}

// TestCancelledGridFlushesPartialTable: cancellation mid-run must
// still flush the (possibly empty) Table I scaffold rendered so far
// and report how many instances finished — the partial-results
// contract of the CLI.
func TestCancelledGridFlushesPartialTable(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	// The fig4 section validates with a live context; cancel right
	// after it by racing a short timer against the (much longer) grid.
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()

	var out, errOut bytes.Buffer
	err := run(ctx, config{paperGrid: true}, &out, &errOut)
	if err == nil {
		t.Skip("run finished before the cancel landed")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if strings.Contains(out.String(), "Table I") && !strings.Contains(err.Error(), "partial results") {
		t.Fatalf("grid abort error %q does not flag partial results", err)
	}
}

// TestStatsReportsTelemetryAndCacheHits: -stats must print the
// telemetry summary, select the numeric model under -model auto, and
// observe a positive cross-section cache hit rate (same-aspect
// channels share one normalized solve).
func TestStatsReportsTelemetryAndCacheHits(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run(context.Background(), config{fig4Only: true, stats: true}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "solver telemetry") {
		t.Fatal("-stats output lacks the telemetry summary")
	}
	if !strings.Contains(s, "sor:") {
		t.Fatal("-stats under -model auto must run the numeric (SOR) model")
	}
	if !strings.Contains(s, "cross-section cache:") || strings.Contains(s, "no lookups") {
		t.Fatalf("-stats output lacks cache traffic:\n%s", s)
	}
	if strings.Contains(s, "hit rate 0.0%") {
		t.Fatalf("expected a positive cache hit rate:\n%s", s)
	}
}

// TestModelFlagRejectsUnknown: the -model flag validates its value.
func TestModelFlagRejectsUnknown(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run(context.Background(), config{model: "spectral"}, &out, &errOut)
	if err == nil || !strings.Contains(err.Error(), "-model") {
		t.Fatalf("unknown model must fail with a -model error, got %v", err)
	}
}

// TestModelFlagValidation: table over every -model spelling, including
// the oocbench-specific "auto" (numeric under -stats, exact otherwise)
// and the shared spellings from sim.ParseModel. Unknown values must
// error with a message listing the valid models.
func TestModelFlagValidation(t *testing.T) {
	cases := []struct {
		model   string
		stats   bool
		want    sim.Model
		wantErr bool
	}{
		{model: "", want: sim.ModelExact},
		{model: "auto", want: sim.ModelExact},
		{model: "auto", stats: true, want: sim.ModelNumeric},
		{model: "exact", want: sim.ModelExact},
		{model: "exact", stats: true, want: sim.ModelExact}, // explicit model beats -stats
		{model: "approx", want: sim.ModelApprox},
		{model: "numeric", want: sim.ModelNumeric},
		{model: "dynamic", want: sim.ModelDynamic},
		{model: "bogus", wantErr: true},
		{model: "Numeric", wantErr: true},
	}
	for _, tc := range cases {
		opt, _, err := config{model: tc.model, stats: tc.stats}.simOptions()
		if tc.wantErr {
			if err == nil {
				t.Errorf("model %q: expected an error", tc.model)
				continue
			}
			if !strings.Contains(err.Error(), sim.ModelNames) {
				t.Errorf("model %q: error does not list valid models: %v", tc.model, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("model %q stats=%v: %v", tc.model, tc.stats, err)
			continue
		}
		if opt.Model != tc.want {
			t.Errorf("model %q stats=%v: got %v want %v", tc.model, tc.stats, opt.Model, tc.want)
		}
		if tc.want == sim.ModelDynamic {
			if err := opt.Dynamic.Validate(); err != nil {
				t.Errorf("model %q: dynamic options not populated: %v", tc.model, err)
			}
		}
	}
}

// TestSchemeFlagValidation: table over every -scheme spelling; unknown
// values must error with a message listing the valid schemes — the
// message main prints before exiting 2.
func TestSchemeFlagValidation(t *testing.T) {
	cases := []struct {
		scheme  string
		want    sim.Scheme
		wantErr bool
	}{
		{scheme: "", want: sim.SchemeAuto},
		{scheme: "auto", want: sim.SchemeAuto},
		{scheme: "sor", want: sim.SchemeSOR},
		{scheme: "mg", want: sim.SchemeMG},
		{scheme: "bogus", wantErr: true},
		{scheme: "Mg", wantErr: true},
	}
	for _, tc := range cases {
		opt, _, err := config{model: "numeric", scheme: tc.scheme}.simOptions()
		if tc.wantErr {
			if err == nil {
				t.Errorf("scheme %q: expected an error", tc.scheme)
				continue
			}
			if !strings.Contains(err.Error(), sim.SchemeNames) {
				t.Errorf("scheme %q: error does not list valid schemes: %v", tc.scheme, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("scheme %q: %v", tc.scheme, err)
			continue
		}
		if opt.Scheme != tc.want {
			t.Errorf("scheme %q: got %v want %v", tc.scheme, opt.Scheme, tc.want)
		}
	}
}

// TestJSONRoundTripAndDiff: a -json run must emit a parseable benchDoc,
// a -diff against that very document must pass, and a tampered
// baseline must fail with a nonzero (error) outcome naming the drifted
// cell. Uses the paper grid under the exact model to stay fast.
func TestJSONRoundTripAndDiff(t *testing.T) {
	ctx := context.Background()
	base := config{paperGrid: true, jsonOut: true}
	var out, errOut bytes.Buffer
	if err := run(ctx, base, &out, &errOut); err != nil {
		t.Fatalf("json run: %v (stderr: %s)", err, errOut.String())
	}
	var doc benchDoc
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("output is not a benchDoc: %v", err)
	}
	if doc.Schema != benchSchema || doc.Grid != "paper" || len(doc.Rows) == 0 {
		t.Fatalf("document malformed: %+v", doc)
	}
	if doc.Instances != 216 {
		t.Fatalf("paper grid is 216 instances, document says %d", doc.Instances)
	}

	baseline := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(baseline, out.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	diffCfg := base
	diffCfg.diffPath = baseline
	diffCfg.diffAccTol = 0.01
	diffCfg.diffWallTol = 100 // the two runs race on a loaded test machine
	diffCfg.diffIterTol = 1.25
	var diffOut, diffErr bytes.Buffer
	if err := run(ctx, diffCfg, &diffOut, &diffErr); err != nil {
		t.Fatalf("self-diff must pass: %v (stderr: %s)", err, diffErr.String())
	}
	if !strings.Contains(diffOut.String(), "benchdiff: OK") {
		t.Fatalf("self-diff did not report OK: %s", diffOut.String())
	}

	// Tamper with one deviation cell beyond the tolerance: regression.
	doc.Rows[0].FlowMaxPct += 1.0
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(baseline, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	diffOut.Reset()
	diffErr.Reset()
	err = run(ctx, diffCfg, &diffOut, &diffErr)
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("tampered baseline must fail with a regression error, got %v", err)
	}
	if !strings.Contains(diffErr.String(), "flow max") {
		t.Fatalf("regression report does not name the drifted cell: %s", diffErr.String())
	}

	// A baseline from a different grid/model/scheme is not comparable.
	mismatch := diffCfg
	mismatch.paperGrid = false
	if err := run(ctx, mismatch, &diffOut, &diffErr); err == nil || !strings.Contains(err.Error(), "not comparable") {
		t.Fatalf("grid mismatch must fail as not comparable, got %v", err)
	}
}
