package main

// This file implements oocbench's calibration mode (-calibrate): the
// offline generator for internal/modelsel's CALIB.json. It sweeps the
// paper grid once per fidelity-ladder rung plus once at the reference
// rung (numeric@128), bounds every rung's deviation drift against the
// reference per use case, and emits the versioned calibration
// document. With -diff it instead compares the fresh document against
// a committed baseline and exits nonzero on drift —
// scripts/calibdiff.sh and the CI calibration job are thin wrappers,
// exactly like benchdiff.sh over -json -diff.
//
// The document is deterministic: every bound derives from the
// bit-deterministic grid evaluation (eval.Grid), no wall-clock or
// worker-count dependent field is emitted, so two runs on the same
// platform are byte-identical and the -calib-tol band only absorbs
// cross-platform floating-point variation.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"

	"ooc/internal/eval"
	"ooc/internal/modelsel"
	"ooc/internal/sim"
	"ooc/internal/usecases"
)

// runCalibrate generates the calibration document and either writes it
// (-calibrate) or diffs it against a committed baseline (-calibrate
// -diff path).
func runCalibrate(ctx context.Context, cfg config, out, errOut io.Writer) error {
	doc, err := calibrationDoc(ctx, cfg.workers)
	if err != nil {
		return err
	}
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("encoding calibration document: %w", err)
	}
	raw = append(raw, '\n')
	// The generator and the loader must agree before the artifact ships:
	// a document the selector would reject at boot is a generator bug.
	if _, err := modelsel.Parse(raw); err != nil {
		return fmt.Errorf("generated calibration document fails its own validation: %w", err)
	}
	if cfg.diffPath != "" {
		return calibDiff(cfg, doc, out, errOut)
	}
	if _, err := out.Write(raw); err != nil {
		return fmt.Errorf("writing calibration document: %w", err)
	}
	return nil
}

// calibrationDoc sweeps the paper grid across the ladder and the
// reference rung and assembles the bounds document. The sweep runs
// under the documented default scheme (auto: SOR below resolution 64,
// multigrid at and above), matching how budget-selected rungs will
// actually be served.
func calibrationDoc(ctx context.Context, workers int) (modelsel.Doc, error) {
	cases := usecases.All()
	instances := usecases.Instances(cases, usecases.PaperSweep())
	ref := modelsel.Reference()

	refReps, err := calibrationGrid(ctx, instances, workers, ref)
	if err != nil {
		return modelsel.Doc{}, err
	}

	doc := modelsel.Doc{Schema: modelsel.Schema, Grid: "paper", Reference: ref.Name}
	for rank, spec := range modelsel.Ladder() {
		reps, err := calibrationGrid(ctx, instances, workers, spec)
		if err != nil {
			return modelsel.Doc{}, err
		}
		rd := modelsel.RungDoc{
			Name:       spec.Name,
			Model:      spec.Model.String(),
			Resolution: spec.Resolution,
			CostRank:   rank + 1,
		}
		for _, uc := range cases {
			b := boundOver(instances, reps, refReps, uc.Name)
			rd.UseCases = append(rd.UseCases, modelsel.UseCaseBounds{UseCase: uc.Name, Bounds: b})
			rd.Global.Flow = math.Max(rd.Global.Flow, b.Flow)
			rd.Global.Perf = math.Max(rd.Global.Perf, b.Perf)
		}
		doc.Rungs = append(doc.Rungs, rd)
	}
	return doc, nil
}

// calibrationGrid evaluates the whole sweep at one rung. Calibration
// tolerates neither failures nor deadline degradations: a bound over a
// partial or degraded grid would understate the worst case.
func calibrationGrid(ctx context.Context, instances []usecases.Instance, workers int, spec modelsel.RungSpec) ([]*sim.Report, error) {
	opt := sim.DefaultOptions()
	spec.Apply(&opt)
	reps, err := eval.Grid(ctx, instances, workers, opt)
	if err != nil {
		return nil, fmt.Errorf("calibrating %s: %w", spec.Name, err)
	}
	for i, r := range reps {
		if r == nil {
			return nil, fmt.Errorf("calibrating %s: instance %s produced no report", spec.Name, instances[i].Label())
		}
		if len(r.Degradations) > 0 {
			return nil, fmt.Errorf("calibrating %s: instance %s degraded under a deadline — rerun without -timeout", spec.Name, instances[i].Label())
		}
	}
	return reps, nil
}

// boundOver computes the worst |MaxDev(rung) − MaxDev(reference)| per
// metric across the instances of one use case ("" spans them all).
func boundOver(instances []usecases.Instance, reps, refReps []*sim.Report, useCase string) modelsel.Bounds {
	var b modelsel.Bounds
	for i, in := range instances {
		if useCase != "" && in.UseCase != useCase {
			continue
		}
		b.Flow = math.Max(b.Flow, math.Abs(reps[i].MaxFlowDeviation-refReps[i].MaxFlowDeviation))
		b.Perf = math.Max(b.Perf, math.Abs(reps[i].MaxPerfDeviation-refReps[i].MaxPerfDeviation))
	}
	return b
}

// calibDiff compares a fresh calibration document against the
// committed baseline at cfg.diffPath. Rung identity (model,
// resolution, cost rank) and document provenance (grid, reference)
// gate exactly; bounds gate within -calib-tol, which only absorbs
// cross-platform floating point — the underlying numbers are
// bit-deterministic on one platform. Every drift is reported before
// the nonzero exit, with the regeneration command naming the actual
// baseline path.
func calibDiff(cfg config, fresh modelsel.Doc, out, errOut io.Writer) error {
	baseTable, err := modelsel.ParseFile(cfg.diffPath)
	if err != nil {
		return err
	}
	base := baseTable.Doc()
	if base.Grid != fresh.Grid || base.Reference != fresh.Reference {
		return fmt.Errorf("baseline %s is grid=%s reference=%s but this run is grid=%s reference=%s — not comparable",
			cfg.diffPath, base.Grid, base.Reference, fresh.Grid, fresh.Reference)
	}

	// Drift lines render into a builder and flush with one checked
	// write, the same discipline as the benchmark report path.
	var warn strings.Builder
	var drifts int
	fail := func(format string, args ...any) {
		drifts++
		fmt.Fprintf(&warn, "calibdiff: drift: "+format+"\n", args...)
	}
	checkBounds := func(rung, scope string, b, f modelsel.Bounds) {
		for _, cell := range []struct {
			metric      string
			base, fresh float64
		}{
			{"flow", b.Flow, f.Flow},
			{"perf", b.Perf, f.Perf},
		} {
			if d := cell.fresh - cell.base; d > cfg.calibTol || -d > cfg.calibTol {
				fail("rung %s %s %s bound drifted %.8g -> %.8g (tolerance %g)",
					rung, scope, cell.metric, cell.base, cell.fresh, cfg.calibTol)
			}
		}
	}

	baseRungs := make(map[string]modelsel.RungDoc, len(base.Rungs))
	for _, r := range base.Rungs {
		baseRungs[r.Name] = r
	}
	matched := make(map[string]bool, len(fresh.Rungs))
	for _, fr := range fresh.Rungs {
		br, ok := baseRungs[fr.Name]
		if !ok {
			fail("rung %q absent from baseline", fr.Name)
			continue
		}
		matched[fr.Name] = true
		if br.Model != fr.Model || br.Resolution != fr.Resolution || br.CostRank != fr.CostRank {
			fail("rung %q identity changed: %s@%d rank %d -> %s@%d rank %d",
				fr.Name, br.Model, br.Resolution, br.CostRank, fr.Model, fr.Resolution, fr.CostRank)
		}
		checkBounds(fr.Name, "global", br.Global, fr.Global)
		baseUC := make(map[string]modelsel.Bounds, len(br.UseCases))
		for _, uc := range br.UseCases {
			baseUC[uc.UseCase] = uc.Bounds
		}
		ucMatched := make(map[string]bool, len(fr.UseCases))
		for _, uc := range fr.UseCases {
			bb, ok := baseUC[uc.UseCase]
			if !ok {
				fail("rung %q use case %q absent from baseline", fr.Name, uc.UseCase)
				continue
			}
			ucMatched[uc.UseCase] = true
			checkBounds(fr.Name, uc.UseCase, bb, uc.Bounds)
		}
		for _, uc := range br.UseCases {
			if !ucMatched[uc.UseCase] {
				fail("rung %q use case %q present only in baseline", fr.Name, uc.UseCase)
			}
		}
	}
	for _, br := range base.Rungs {
		if !matched[br.Name] {
			fail("rung %q present only in baseline", br.Name)
		}
	}

	if drifts > 0 {
		if _, err := io.WriteString(errOut, warn.String()); err != nil {
			return fmt.Errorf("writing drift report: %w", err)
		}
		return fmt.Errorf("%d calibration drift(s) vs %s — regenerate deliberately with: go run ./cmd/oocbench -calibrate > %s",
			drifts, cfg.diffPath, cfg.diffPath)
	}
	if _, err := fmt.Fprintf(out, "calibdiff: OK vs %s (%d rungs, reference %s)\n",
		cfg.diffPath, len(fresh.Rungs), fresh.Reference); err != nil {
		return fmt.Errorf("writing diff result: %w", err)
	}
	return nil
}
