// Command oocd is the design-as-a-service daemon: it serves the
// spec → design → validation pipeline over HTTP (internal/server).
//
// Endpoints:
//
//	POST /v1/design             specification in, generated design out
//	POST /v1/validate?model=m&scheme=s
//	                            specification in, validation report out;
//	                            ?error_budget=f instead of ?model=
//	                            auto-selects the cheapest calibrated
//	                            model rung within the budget (the rung
//	                            is echoed in X-OOC-Model-Selected)
//	POST   /v1/jobs             submit an asynchronous design-space
//	                            search job (grid or successive halving)
//	GET    /v1/jobs             list retained jobs
//	GET    /v1/jobs/{id}        poll job progress / final result
//	DELETE /v1/jobs/{id}        cancel a job cooperatively
//	GET  /v1/cache              export both caches as a versioned
//	                            snapshot (peer fill)
//	PUT  /v1/cache              import a snapshot (409 on version or
//	                            schema mismatch, 400 on corruption)
//	GET  /healthz               liveness
//	GET  /metrics               text metrics exposition
//
// ?scheme= picks the Poisson backend behind the numeric model (auto,
// sor or mg); requests without it use the -scheme flag's default.
// ?model=dynamic selects the transient tier and adds ?duration=,
// ?profile= (constant, ramp:<rise>, pulse:<depth>@<period>) and
// ?dose=; a simulated span that cannot fit the request's deadline
// budget is rejected up front with 400.
//
// -cache-snapshot makes the caches survive restarts: the daemon loads
// the snapshot file at boot (a missing file starts cold quietly; a
// corrupt or version-mismatched one is rejected with a clear error and
// the daemon still starts cold), persists it every -snapshot-interval,
// and persists once more after the graceful drain. Writes are atomic
// (temp file + rename), so a crash mid-write never corrupts the last
// good snapshot. -peer-fill warms a fresh replica from a running
// peer's GET /v1/cache at boot; failure to reach the peer is a
// warning, not a fatal error.
//
// Every request runs under a deadline budget: the -timeout default,
// overridable per request with ?timeout= up to -max-timeout.
// Concurrency is bounded (-concurrent solves, -queue waiters; overload
// answers 429). Identical requests are deduplicated and cached
// (-cache entries, keyed on the canonical spec bytes).
//
// Search jobs run detached from the submitting request, bounded by
// their own admission (-jobs-running concurrent searches, -jobs-queue
// waiters, overload answers 429) and per-job deadline budget
// (-job-timeout default, capped at -job-max-timeout).
//
// SIGINT/SIGTERM starts a graceful drain: the listener closes,
// running search jobs are cancelled (their partial results stay
// pollable through the drain), in-flight requests get -drain to
// finish, stragglers are cancelled through the context plumbing. The
// final metrics exposition is printed to stderr on exit with -stats.
//
// Usage:
//
//	oocd -addr :8080
//	oocd -addr 127.0.0.1:0 -timeout 5s -stats   # ephemeral port, printed on stdout
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"ooc/internal/cachesnap"
	"ooc/internal/modelsel"
	"ooc/internal/server"
	"ooc/internal/sim"
)

func main() {
	cfg := struct {
		addr          string
		concurrent    int
		queue         int
		cache         int
		timeout       time.Duration
		maxTimeout    time.Duration
		drain         time.Duration
		scheme        string
		stats         bool
		jobsRunning   int
		jobsQueue     int
		jobsHistory   int
		jobTimeout    time.Duration
		jobMaxTimeout time.Duration
		cacheSnapshot string
		snapshotEvery time.Duration
		peerFill      string
	}{}
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address (host:port; port 0 picks an ephemeral port)")
	flag.IntVar(&cfg.concurrent, "concurrent", 0, "max concurrent solves (0 = worker-pool width)")
	flag.IntVar(&cfg.queue, "queue", 0, "max queued requests before 429 (0 = 4x concurrent)")
	flag.IntVar(&cfg.cache, "cache", 0, "response cache entries (0 = 256)")
	flag.DurationVar(&cfg.timeout, "timeout", 0, "default per-request deadline budget (0 = 15s)")
	flag.DurationVar(&cfg.maxTimeout, "max-timeout", 0, "cap on client-requested ?timeout= (0 = 60s)")
	flag.DurationVar(&cfg.drain, "drain", 0, "graceful-drain budget on shutdown (0 = 5s)")
	flag.StringVar(&cfg.scheme, "scheme", "auto", "default Poisson backend for ?scheme=-less validation requests: auto, sor or mg")
	flag.BoolVar(&cfg.stats, "stats", false, "print the final metrics exposition to stderr on exit")
	flag.IntVar(&cfg.jobsRunning, "jobs-running", 0, "max concurrently running search jobs (0 = 1)")
	flag.IntVar(&cfg.jobsQueue, "jobs-queue", 0, "max queued search jobs before 429 (0 = 8)")
	flag.IntVar(&cfg.jobsHistory, "jobs-history", 0, "finished search jobs retained for polling (0 = 64)")
	flag.DurationVar(&cfg.jobTimeout, "job-timeout", 0, "default per-job deadline budget (0 = 5m)")
	flag.DurationVar(&cfg.jobMaxTimeout, "job-max-timeout", 0, "cap on client-requested job timeouts (0 = 30m)")
	flag.StringVar(&cfg.cacheSnapshot, "cache-snapshot", "", "cache snapshot file: loaded at boot, persisted periodically and on graceful drain")
	flag.DurationVar(&cfg.snapshotEvery, "snapshot-interval", time.Minute, "how often to persist -cache-snapshot (0 disables periodic persists)")
	flag.StringVar(&cfg.peerFill, "peer-fill", "", "base URL of a running peer to warm the caches from at boot (GET <url>/v1/cache)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: oocd [flags]")
		os.Exit(2)
	}
	// A typo'd -scheme is a usage error: fail before the listener
	// opens, with the valid spellings, and exit 2 like flag package
	// parse failures do.
	scheme, err := serverScheme(cfg.scheme)
	if err != nil {
		fmt.Fprintln(os.Stderr, "oocd:", err)
		fmt.Fprintf(os.Stderr, "usage: oocd [-scheme {%s}] [flags]\n", sim.SchemeNames)
		os.Exit(2)
	}
	// The embedded calibration artifact backs every ?error_budget=
	// request; a build whose artifact fails validation must not serve —
	// fail loudly at boot, not with per-request 500s.
	if _, err := modelsel.Default(); err != nil {
		fmt.Fprintln(os.Stderr, "oocd:", err)
		os.Exit(2)
	}

	if err := run(cfg.addr, snapshotConfig{
		path:     cfg.cacheSnapshot,
		interval: cfg.snapshotEvery,
		peer:     cfg.peerFill,
	}, server.Config{
		MaxConcurrent:  cfg.concurrent,
		QueueDepth:     cfg.queue,
		CacheSize:      cfg.cache,
		DefaultTimeout: cfg.timeout,
		MaxTimeout:     cfg.maxTimeout,
		DrainTimeout:   cfg.drain,
		DefaultScheme:  scheme,

		JobsMaxRunning:    cfg.jobsRunning,
		JobsQueueDepth:    cfg.jobsQueue,
		JobsHistory:       cfg.jobsHistory,
		JobDefaultTimeout: cfg.jobTimeout,
		JobMaxTimeout:     cfg.jobMaxTimeout,
	}, cfg.stats); err != nil {
		fmt.Fprintln(os.Stderr, "oocd:", err)
		os.Exit(1)
	}
}

// serverScheme resolves the -scheme flag through the shared
// sim.ParseScheme spelling check.
func serverScheme(name string) (sim.Scheme, error) {
	s, err := sim.ParseScheme(name)
	if err != nil {
		return 0, fmt.Errorf("-scheme: %w", err)
	}
	return s, nil
}

// snapshotConfig carries the warm-start knobs into run.
type snapshotConfig struct {
	path     string        // -cache-snapshot; "" disables persistence
	interval time.Duration // -snapshot-interval; <= 0 disables periodic persists
	peer     string        // -peer-fill base URL; "" disables
}

func run(addr string, snap snapshotConfig, cfg server.Config, stats bool) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s := server.New(cfg)

	// Warm the caches before announcing the listener: a snapshot or
	// peer that fails to load is a warning, never a fatal error — the
	// daemon always starts, cold at worst.
	if snap.path != "" {
		loadSnapshotFile(s, snap.path)
	}
	if snap.peer != "" {
		peerFill(s, snap.peer)
	}

	// The resolved address goes to stdout so scripts using port 0 can
	// discover the ephemeral port; everything else is stderr.
	fmt.Printf("oocd: listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var persisters sync.WaitGroup
	if snap.path != "" && snap.interval > 0 {
		persisters.Add(1)
		go func() {
			defer persisters.Done()
			t := time.NewTicker(snap.interval)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if err := persistSnapshot(s, snap.path); err != nil {
						fmt.Fprintln(os.Stderr, "oocd: cache snapshot persist:", err)
					}
				}
			}
		}()
	}

	err = s.Serve(ctx, ln)
	persisters.Wait()
	if snap.path != "" {
		// One final persist after the drain, so everything cached during
		// this process's lifetime survives the restart.
		if perr := persistSnapshot(s, snap.path); perr != nil {
			fmt.Fprintln(os.Stderr, "oocd: cache snapshot persist:", perr)
		}
	}
	if stats {
		fmt.Fprint(os.Stderr, s.MetricsText())
	}
	return err
}

// loadSnapshotFile restores the caches from a boot snapshot. A missing
// file means a first boot — start cold, quietly. Anything else wrong
// with the file (corruption, a version or schema mismatch from an
// incompatible build) is reported clearly and the daemon starts cold:
// a stale snapshot is rejected, never silently misused.
func loadSnapshotFile(s *server.Server, path string) {
	snap, err := cachesnap.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return
		}
		fmt.Fprintf(os.Stderr, "oocd: cache snapshot %s rejected (%v); starting cold\n", path, err)
		return
	}
	st := s.RestoreSnapshot(snap)
	fmt.Fprintf(os.Stderr, "oocd: cache snapshot %s: restored %d responses, %d cross-sections\n",
		path, st.Responses, st.CrossSections)
}

// persistSnapshot writes the live cache state to path atomically.
func persistSnapshot(s *server.Server, path string) error {
	return cachesnap.WriteFile(path, s.Snapshot())
}

// peerFill warms the caches from a running peer's GET /v1/cache.
// Unreachable peers and rejected bodies are warnings: the fresh
// replica still starts, cold.
func peerFill(s *server.Server, base string) {
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Get(strings.TrimSuffix(base, "/") + "/v1/cache")
	if err != nil {
		fmt.Fprintf(os.Stderr, "oocd: peer fill from %s failed (%v); starting cold\n", base, err)
		return
	}
	defer func() {
		if cerr := resp.Body.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "oocd: peer fill:", cerr)
		}
	}()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "oocd: peer fill from %s failed (HTTP %d); starting cold\n", base, resp.StatusCode)
		return
	}
	st, err := s.ReadSnapshot(resp.Body)
	if err != nil {
		fmt.Fprintf(os.Stderr, "oocd: peer snapshot from %s rejected (%v); starting cold\n", base, err)
		return
	}
	fmt.Fprintf(os.Stderr, "oocd: peer fill from %s: restored %d responses, %d cross-sections\n",
		base, st.Responses, st.CrossSections)
}
