// Command oocd is the design-as-a-service daemon: it serves the
// spec → design → validation pipeline over HTTP (internal/server).
//
// Endpoints:
//
//	POST /v1/design             specification in, generated design out
//	POST /v1/validate?model=m&scheme=s
//	                            specification in, validation report out
//	POST   /v1/jobs             submit an asynchronous design-space
//	                            search job (grid or successive halving)
//	GET    /v1/jobs             list retained jobs
//	GET    /v1/jobs/{id}        poll job progress / final result
//	DELETE /v1/jobs/{id}        cancel a job cooperatively
//	GET  /healthz               liveness
//	GET  /metrics               text metrics exposition
//
// ?scheme= picks the Poisson backend behind the numeric model (auto,
// sor or mg); requests without it use the -scheme flag's default.
//
// Every request runs under a deadline budget: the -timeout default,
// overridable per request with ?timeout= up to -max-timeout.
// Concurrency is bounded (-concurrent solves, -queue waiters; overload
// answers 429). Identical requests are deduplicated and cached
// (-cache entries, keyed on the canonical spec bytes).
//
// Search jobs run detached from the submitting request, bounded by
// their own admission (-jobs-running concurrent searches, -jobs-queue
// waiters, overload answers 429) and per-job deadline budget
// (-job-timeout default, capped at -job-max-timeout).
//
// SIGINT/SIGTERM starts a graceful drain: the listener closes,
// running search jobs are cancelled (their partial results stay
// pollable through the drain), in-flight requests get -drain to
// finish, stragglers are cancelled through the context plumbing. The
// final metrics exposition is printed to stderr on exit with -stats.
//
// Usage:
//
//	oocd -addr :8080
//	oocd -addr 127.0.0.1:0 -timeout 5s -stats   # ephemeral port, printed on stdout
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ooc/internal/server"
	"ooc/internal/sim"
)

func main() {
	cfg := struct {
		addr          string
		concurrent    int
		queue         int
		cache         int
		timeout       time.Duration
		maxTimeout    time.Duration
		drain         time.Duration
		scheme        string
		stats         bool
		jobsRunning   int
		jobsQueue     int
		jobsHistory   int
		jobTimeout    time.Duration
		jobMaxTimeout time.Duration
	}{}
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address (host:port; port 0 picks an ephemeral port)")
	flag.IntVar(&cfg.concurrent, "concurrent", 0, "max concurrent solves (0 = worker-pool width)")
	flag.IntVar(&cfg.queue, "queue", 0, "max queued requests before 429 (0 = 4x concurrent)")
	flag.IntVar(&cfg.cache, "cache", 0, "response cache entries (0 = 256)")
	flag.DurationVar(&cfg.timeout, "timeout", 0, "default per-request deadline budget (0 = 15s)")
	flag.DurationVar(&cfg.maxTimeout, "max-timeout", 0, "cap on client-requested ?timeout= (0 = 60s)")
	flag.DurationVar(&cfg.drain, "drain", 0, "graceful-drain budget on shutdown (0 = 5s)")
	flag.StringVar(&cfg.scheme, "scheme", "auto", "default Poisson backend for ?scheme=-less validation requests: auto, sor or mg")
	flag.BoolVar(&cfg.stats, "stats", false, "print the final metrics exposition to stderr on exit")
	flag.IntVar(&cfg.jobsRunning, "jobs-running", 0, "max concurrently running search jobs (0 = 1)")
	flag.IntVar(&cfg.jobsQueue, "jobs-queue", 0, "max queued search jobs before 429 (0 = 8)")
	flag.IntVar(&cfg.jobsHistory, "jobs-history", 0, "finished search jobs retained for polling (0 = 64)")
	flag.DurationVar(&cfg.jobTimeout, "job-timeout", 0, "default per-job deadline budget (0 = 5m)")
	flag.DurationVar(&cfg.jobMaxTimeout, "job-max-timeout", 0, "cap on client-requested job timeouts (0 = 30m)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: oocd [flags]")
		os.Exit(2)
	}
	// A typo'd -scheme is a usage error: fail before the listener
	// opens, with the valid spellings, and exit 2 like flag package
	// parse failures do.
	scheme, err := serverScheme(cfg.scheme)
	if err != nil {
		fmt.Fprintln(os.Stderr, "oocd:", err)
		fmt.Fprintf(os.Stderr, "usage: oocd [-scheme {%s}] [flags]\n", sim.SchemeNames)
		os.Exit(2)
	}

	if err := run(cfg.addr, server.Config{
		MaxConcurrent:  cfg.concurrent,
		QueueDepth:     cfg.queue,
		CacheSize:      cfg.cache,
		DefaultTimeout: cfg.timeout,
		MaxTimeout:     cfg.maxTimeout,
		DrainTimeout:   cfg.drain,
		DefaultScheme:  scheme,

		JobsMaxRunning:    cfg.jobsRunning,
		JobsQueueDepth:    cfg.jobsQueue,
		JobsHistory:       cfg.jobsHistory,
		JobDefaultTimeout: cfg.jobTimeout,
		JobMaxTimeout:     cfg.jobMaxTimeout,
	}, cfg.stats); err != nil {
		fmt.Fprintln(os.Stderr, "oocd:", err)
		os.Exit(1)
	}
}

// serverScheme resolves the -scheme flag through the shared
// sim.ParseScheme spelling check.
func serverScheme(name string) (sim.Scheme, error) {
	s, err := sim.ParseScheme(name)
	if err != nil {
		return 0, fmt.Errorf("-scheme: %w", err)
	}
	return s, nil
}

func run(addr string, cfg server.Config, stats bool) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s := server.New(cfg)

	// The resolved address goes to stdout so scripts using port 0 can
	// discover the ephemeral port; everything else is stderr.
	fmt.Printf("oocd: listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err = s.Serve(ctx, ln)
	if stats {
		fmt.Fprint(os.Stderr, s.MetricsText())
	}
	return err
}
