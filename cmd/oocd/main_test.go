package main

import (
	"strings"
	"testing"

	"ooc/internal/sim"
)

// TestSchemeFlagValidation: every valid -scheme spelling resolves to
// the matching sim.Scheme, and anything else fails with an error that
// lists the valid schemes — the message main prints before exiting 2.
func TestSchemeFlagValidation(t *testing.T) {
	cases := []struct {
		scheme  string
		want    sim.Scheme
		wantErr bool
	}{
		{scheme: "auto", want: sim.SchemeAuto},
		{scheme: "sor", want: sim.SchemeSOR},
		{scheme: "mg", want: sim.SchemeMG},
		{scheme: "", want: sim.SchemeAuto}, // flag default semantics
		{scheme: "bogus", wantErr: true},
		{scheme: "SOR", wantErr: true}, // spellings are case-sensitive
	}
	for _, tc := range cases {
		got, err := serverScheme(tc.scheme)
		if tc.wantErr {
			if err == nil {
				t.Errorf("scheme %q: expected an error", tc.scheme)
				continue
			}
			if !strings.Contains(err.Error(), sim.SchemeNames) {
				t.Errorf("scheme %q: error does not list valid schemes: %v", tc.scheme, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("scheme %q: %v", tc.scheme, err)
			continue
		}
		if got != tc.want {
			t.Errorf("scheme %q: got %v want %v", tc.scheme, got, tc.want)
		}
	}
}
