package main

import (
	"fmt"
	"testing"
)

// TestSplitTargets: -targets parsing normalizes slashes/whitespace,
// rejects duplicates and empty lists, and falls back to -url.
func TestSplitTargets(t *testing.T) {
	got, err := splitTargets("", "http://a:1/")
	if err != nil || len(got) != 1 || got[0] != "http://a:1" {
		t.Fatalf("fallback to -url: %v %v", got, err)
	}
	got, err = splitTargets(" http://a:1/ , http://b:2 ", "ignored")
	if err != nil || len(got) != 2 || got[0] != "http://a:1" || got[1] != "http://b:2" {
		t.Fatalf("two targets: %v %v", got, err)
	}
	if _, err := splitTargets("http://a:1,http://a:1/", ""); err == nil {
		t.Fatal("duplicate targets (differing only by slash) accepted")
	}
	if _, err := splitTargets(" , ", ""); err == nil {
		t.Fatal("blank target list accepted")
	}
}

// TestPickTargetDeterministicAndOrderIndependent: the same (targets,
// body) pair always routes to the same replica regardless of the order
// targets are listed — the property that lets independent oocload
// processes (and independently booted replicas) agree on the sharding
// without coordination.
func TestPickTargetDeterministicAndOrderIndependent(t *testing.T) {
	targets := []string{"http://a:1", "http://b:2", "http://c:3"}
	reversed := []string{"http://c:3", "http://b:2", "http://a:1"}
	for i := 0; i < 50; i++ {
		body := []byte(fmt.Sprintf(`{"spec":%d}`, i))
		first := pickTarget(targets, body)
		if again := pickTarget(targets, body); again != first {
			t.Fatalf("body %d: routing not deterministic (%s vs %s)", i, first, again)
		}
		if rev := pickTarget(reversed, body); rev != first {
			t.Fatalf("body %d: routing depends on target order (%s vs %s)", i, first, rev)
		}
	}
}

// TestPickTargetSpreadsAndStaysStable: many distinct bodies spread
// over all targets (no degenerate all-to-one hashing), and removing
// one target only remaps the bodies that were routed to it.
func TestPickTargetSpreadsAndStaysStable(t *testing.T) {
	targets := []string{"http://a:1", "http://b:2", "http://c:3"}
	const n = 300
	assigned := make(map[string]string, n)
	counts := make(map[string]int)
	for i := 0; i < n; i++ {
		body := fmt.Sprintf(`{"spec":%d}`, i)
		target := pickTarget(targets, []byte(body))
		assigned[body] = target
		counts[target]++
	}
	for _, target := range targets {
		// A uniform hash gives ~100 each; even a badly unlucky draw
		// keeps every shard well above a twentieth of the keys.
		if counts[target] < n/20 {
			t.Fatalf("target %s got %d of %d bodies — hashing is degenerate: %v", target, counts[target], n, counts)
		}
	}

	// Drop one target: only its keys may move.
	remaining := []string{"http://a:1", "http://c:3"}
	for body, was := range assigned {
		now := pickTarget(remaining, []byte(body))
		if was != "http://b:2" && now != was {
			t.Fatalf("body %q moved %s → %s though its target never left", body, was, now)
		}
		if was == "http://b:2" && now != "http://a:1" && now != "http://c:3" {
			t.Fatalf("orphaned body %q routed to %s", body, now)
		}
	}
}
