package main

import (
	"fmt"
	"hash/fnv"
	"strings"
)

// splitTargets resolves the -targets / -url flags into the list of
// daemon base URLs to load. -targets wins when set; entries are
// trimmed and trailing slashes dropped so "http://a:1/" and
// "http://a:1" route identically.
func splitTargets(targets, url string) ([]string, error) {
	if targets == "" {
		return []string{strings.TrimSuffix(url, "/")}, nil
	}
	var out []string
	seen := make(map[string]bool)
	for _, t := range strings.Split(targets, ",") {
		t = strings.TrimSuffix(strings.TrimSpace(t), "/")
		if t == "" {
			continue
		}
		if seen[t] {
			return nil, fmt.Errorf("duplicate target %q", t)
		}
		seen[t] = true
		out = append(out, t)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-targets lists no targets")
	}
	return out, nil
}

// pickTarget routes a request body to one target by rendezvous
// (highest-random-weight) hashing: each target scores
// FNV-1a64(target NUL body) and the highest score wins. The choice
// depends only on the (target, body) pairs — not on the order targets
// are listed — so every oocload process (and every replica doing the
// same arithmetic) sends a given canonical spec to the same daemon,
// which is what makes each replica's response cache converge on its
// shard of the key space. Removing a target only remaps the keys that
// scored highest on it; everything else stays put.
func pickTarget(targets []string, body []byte) string {
	best := targets[0]
	var bestScore uint64
	for i, t := range targets {
		h := fnv.New64a()
		// Writes to a hash.Hash never fail.
		_, _ = h.Write([]byte(t))
		_, _ = h.Write([]byte{0})
		_, _ = h.Write(body)
		score := h.Sum64()
		if i == 0 || score > bestScore || (score == bestScore && t < best) {
			best, bestScore = t, score
		}
	}
	return best
}
