package main

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ooc/internal/server"
	"ooc/internal/sim"
)

// TestModelFlagValidation mirrors the oocsim/oocbench tests: unknown
// -model or -endpoint spellings are usage errors listing the valid
// values, caught before any traffic is sent.
func TestModelFlagValidation(t *testing.T) {
	cases := []struct {
		endpoint, model string
		wantPath        string
		wantErr         bool
	}{
		{"design", "exact", "/v1/design", false},
		{"design", "bogus", "", true}, // model is validated even when design ignores it
		{"validate", "exact", "/v1/validate?model=exact", false},
		{"validate", "approx", "/v1/validate?model=approx", false},
		{"validate", "numeric", "/v1/validate?model=numeric", false},
		{"validate", "dynamic", "/v1/validate?model=dynamic", false},
		{"validate", "", "/v1/validate?model=exact", false},
		{"validate", "spectral", "", true},
		{"validate", "NUMERIC", "", true},
		{"simulate", "exact", "", true},
	}
	for _, tc := range cases {
		cfg := config{endpoint: tc.endpoint, model: tc.model}
		path, err := cfg.requestPath()
		if tc.wantErr {
			if err == nil {
				t.Errorf("endpoint %q model %q: expected an error", tc.endpoint, tc.model)
				continue
			}
			if tc.endpoint == "validate" && !strings.Contains(err.Error(), sim.ModelNames) {
				t.Errorf("endpoint %q model %q: error %q does not list the valid models", tc.endpoint, tc.model, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("endpoint %q model %q: %v", tc.endpoint, tc.model, err)
			continue
		}
		if path != tc.wantPath {
			t.Errorf("endpoint %q model %q: path %q, want %q", tc.endpoint, tc.model, path, tc.wantPath)
		}
	}
}

// TestPercentile pins the nearest-rank percentile arithmetic.
func TestPercentile(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	sorted := []time.Duration{ms(1), ms(2), ms(3), ms(4), ms(5), ms(6), ms(7), ms(8), ms(9), ms(10)}
	cases := []struct {
		p    int
		want time.Duration
	}{
		{50, ms(5)},
		{90, ms(9)},
		{99, ms(10)},
		{100, ms(10)},
		{1, ms(1)},
	}
	for _, tc := range cases {
		if got := percentile(sorted, tc.p); got != tc.want {
			t.Errorf("p%d = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
	if got := percentile([]time.Duration{ms(7)}, 99); got != ms(7) {
		t.Errorf("singleton p99 = %v, want 7ms", got)
	}
}

// TestBodies: one spec by default, the full catalogue under -distinct.
func TestBodies(t *testing.T) {
	one, err := bodies(config{spec: "male_simple"})
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 {
		t.Fatalf("default bodies: %d payloads", len(one))
	}
	all, err := bodies(config{distinct: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 3 {
		t.Fatalf("distinct bodies: only %d payloads", len(all))
	}
	seen := map[string]bool{}
	for _, b := range all {
		if seen[string(b)] {
			t.Fatal("distinct bodies repeat a payload")
		}
		seen[string(b)] = true
	}
	if _, err := bodies(config{spec: "nonexistent"}); err == nil {
		t.Fatal("unknown spec name silently accepted")
	}
}

// TestJobsProbe: the -jobs mode drives the asynchronous search path
// end to end against an in-process daemon — submit, poll to a
// terminal state, assert a feasible best that cost fewer full-cost
// evaluations than the exhaustive grid.
func TestJobsProbe(t *testing.T) {
	ts := httptest.NewServer(server.New(server.Config{}).Handler())
	defer ts.Close()
	if err := jobsProbe(ts.URL, "male_simple"); err != nil {
		t.Fatal(err)
	}
	if err := jobsProbe(ts.URL, "not_a_usecase"); err == nil {
		t.Fatal("unknown use case: expected an error")
	}
}

// TestDynamicProbe: the -dynamic mode runs one short transient
// validation and asserts the over-budget rejection against an
// in-process daemon.
func TestDynamicProbe(t *testing.T) {
	ts := httptest.NewServer(server.New(server.Config{}).Handler())
	defer ts.Close()
	if err := dynamicProbe(ts.URL, "male_simple"); err != nil {
		t.Fatal(err)
	}
	if err := dynamicProbe(ts.URL, "not_a_usecase"); err == nil {
		t.Fatal("unknown use case: expected an error")
	}
}
