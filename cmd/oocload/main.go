// Command oocload is the load generator for the oocd daemon: it fires
// a configurable number of requests at /v1/design or /v1/validate from
// a pool of concurrent workers and reports throughput and latency
// percentiles. Because the daemon caches canonicalized specs, a run
// against one spec measures the warm-cache serving path after the
// first solve; -distinct requests a spread of built-in use cases so
// every request is a cold solve instead.
//
// With -targets, oocload drives a fleet of daemons: each distinct spec
// body routes to one replica by rendezvous hashing, so every replica's
// response cache converges on its own shard of the key space instead
// of every replica caching everything. The routing depends only on the
// (target, body) pairs — not on list order or which oocload process
// computes it.
//
// Usage:
//
//	oocload -url http://localhost:8080 -n 200 -c 8
//	oocload -url http://localhost:8080 -endpoint validate -model numeric
//	oocload -targets http://localhost:8080,http://localhost:8081 -distinct
//	oocload -url http://localhost:8080 -smoke     # health+design+metrics probe
//	oocload -url http://localhost:8080 -jobs      # async /v1/jobs search probe
//	oocload -url http://localhost:8080 -dynamic   # transient-tier probe incl. budget rejection
//	oocload -url http://localhost:8080 -endpoint validate -budget 0.01   # budgeted traffic
//	oocload -url http://localhost:8080 -budget-probe   # ?error_budget= selection/caching probe
//	oocload -url http://localhost:8080 -metrics   # dump /metrics to stdout
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"ooc/internal/modelsel"
	"ooc/internal/parallel"
	"ooc/internal/sim"
	"ooc/internal/specio"
	"ooc/internal/usecases"
)

type config struct {
	url         string
	targets     string
	endpoint    string
	model       string
	spec        string
	n           int
	workers     int
	budget      float64
	distinct    bool
	smoke       bool
	jobs        bool
	dynamic     bool
	budgetProbe bool
	metrics     bool
}

func main() {
	var cfg config
	flag.StringVar(&cfg.url, "url", "http://localhost:8080", "base URL of the oocd daemon")
	flag.StringVar(&cfg.targets, "targets", "", "comma-separated daemon base URLs; requests route by rendezvous hash on the spec body (overrides -url)")
	flag.StringVar(&cfg.endpoint, "endpoint", "design", "endpoint to load: design or validate")
	flag.StringVar(&cfg.model, "model", "exact", "resistance model for -endpoint validate")
	flag.StringVar(&cfg.spec, "spec", "male_simple", "built-in use case to post")
	flag.IntVar(&cfg.n, "n", 100, "total number of requests")
	flag.IntVar(&cfg.workers, "c", 8, "concurrent workers")
	flag.BoolVar(&cfg.distinct, "distinct", false, "rotate through all built-in use cases (defeats the response cache)")
	flag.BoolVar(&cfg.smoke, "smoke", false, "probe /healthz, one /v1/design and /metrics on every target, then exit")
	flag.BoolVar(&cfg.jobs, "jobs", false, "submit a successive-halving search job, poll it to completion, assert a feasible best, then exit")
	flag.BoolVar(&cfg.dynamic, "dynamic", false, "probe the transient tier: one short dynamic validation must succeed and an over-budget duration must be rejected up front, then exit")
	flag.Float64Var(&cfg.budget, "budget", 0, "send ?error_budget= requests instead of ?model= (fraction in (0, 1]; 0 disables)")
	flag.BoolVar(&cfg.budgetProbe, "budget-probe", false, "probe ?error_budget= model auto-selection: selection header, cache hit on repeat, unmeetable-budget 400, explicit-model override, then exit")
	flag.BoolVar(&cfg.metrics, "metrics", false, "print every target's /metrics exposition to stdout, then exit")
	flag.Parse()

	path, err := cfg.requestPath()
	if err != nil {
		fmt.Fprintln(os.Stderr, "oocload:", err)
		fmt.Fprintf(os.Stderr, "usage: oocload [-endpoint {design, validate}] [-model {%s}] [flags]\n", sim.ModelNames)
		os.Exit(2)
	}
	targets, err := splitTargets(cfg.targets, cfg.url)
	if err != nil {
		fmt.Fprintln(os.Stderr, "oocload:", err)
		os.Exit(2)
	}
	switch {
	case cfg.metrics:
		err = printMetrics(targets)
	case cfg.smoke:
		err = nil
		for _, t := range targets {
			if serr := smoke(t); serr != nil && err == nil {
				err = serr
			}
		}
	case cfg.jobs:
		err = jobsProbe(targets[0], cfg.spec)
	case cfg.dynamic:
		err = dynamicProbe(targets[0], cfg.spec)
	case cfg.budgetProbe:
		err = budgetProbeRun(targets[0], cfg.spec, cfg.budget)
	default:
		err = run(cfg, targets, path)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "oocload:", err)
		os.Exit(1)
	}
}

// requestPath validates the endpoint/model flags and builds the
// request path. Unknown spellings are usage errors (exit 2), caught
// before any traffic is sent.
func (c config) requestPath() (string, error) {
	m, err := sim.ParseModel(c.model)
	if err != nil {
		return "", err
	}
	if c.budget != 0 {
		if err := modelsel.CheckBudget(c.budget); err != nil {
			return "", err
		}
	}
	switch c.endpoint {
	case "design":
		if c.budget != 0 {
			return fmt.Sprintf("/v1/design?error_budget=%g", c.budget), nil
		}
		return "/v1/design", nil
	case "validate":
		// -budget replaces the fixed ?model= with server-side
		// auto-selection, so a mixed fleet of budgeted and fixed-model
		// load is two oocload invocations.
		if c.budget != 0 {
			return fmt.Sprintf("/v1/validate?error_budget=%g", c.budget), nil
		}
		return "/v1/validate?model=" + m.String(), nil
	default:
		return "", fmt.Errorf("unknown endpoint %q (valid endpoints: design, validate)", c.endpoint)
	}
}

// bodies materializes the request payloads: one spec repeated, or the
// full use-case catalogue when -distinct.
func bodies(cfg config) ([][]byte, error) {
	var names []string
	if cfg.distinct {
		for _, uc := range usecases.All() {
			names = append(names, uc.Name)
		}
	} else {
		names = []string{cfg.spec}
	}
	payloads := make([][]byte, 0, len(names))
	for _, name := range names {
		uc, err := usecases.ByName(name)
		if err != nil {
			return nil, err
		}
		raw, err := specio.Marshal(uc.Build())
		if err != nil {
			return nil, err
		}
		payloads = append(payloads, raw)
	}
	return payloads, nil
}

func post(client *http.Client, url string, body []byte) (int, error) {
	resp, err := client.Post(url, "application/json", strings.NewReader(string(body)))
	if err != nil {
		return 0, err
	}
	// Drain so the transport reuses the connection.
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		_ = resp.Body.Close()
		return resp.StatusCode, err
	}
	if err := resp.Body.Close(); err != nil {
		return resp.StatusCode, err
	}
	return resp.StatusCode, nil
}

func run(cfg config, targets []string, path string) error {
	payloads, err := bodies(cfg)
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: 2 * time.Minute}

	// Route each distinct payload once, up front: the per-request work
	// stays allocation-free and the routing is visibly deterministic.
	urls := make([]string, len(payloads))
	routed := make(map[string]int)
	for i, body := range payloads {
		target := pickTarget(targets, body)
		urls[i] = target + path
		routed[target]++
	}

	var mu sync.Mutex
	latencies := make([]time.Duration, 0, cfg.n)
	statuses := make(map[int]int)
	perTarget := make(map[string]int)

	workers := parallel.Workers(cfg.workers)
	start := time.Now()
	err = parallel.ForEach(cfg.n, workers, func(i int) error {
		body := payloads[i%len(payloads)]
		url := urls[i%len(payloads)]
		t0 := time.Now()
		status, err := post(client, url, body)
		lat := time.Since(t0)
		if err != nil {
			return fmt.Errorf("request %d: %w", i, err)
		}
		mu.Lock()
		latencies = append(latencies, lat)
		statuses[status]++
		perTarget[url]++
		mu.Unlock()
		return nil
	})
	elapsed := time.Since(start)
	if err != nil {
		return err
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	where := targets[0] + path
	if len(targets) > 1 {
		where = fmt.Sprintf("%d targets%s", len(targets), path)
	}
	fmt.Printf("oocload: %d requests to %s with %d workers in %v\n", cfg.n, where, workers, elapsed.Round(time.Millisecond))
	fmt.Printf("throughput: %.1f req/s\n", float64(cfg.n)/elapsed.Seconds())
	if len(targets) > 1 {
		var tUrls []string
		for u := range perTarget {
			tUrls = append(tUrls, u)
		}
		sort.Strings(tUrls)
		for _, u := range tUrls {
			fmt.Printf("target %s: %d requests (%d distinct specs)\n", u, perTarget[u], routed[strings.TrimSuffix(u, path)])
		}
	}
	var codes []int
	for code := range statuses {
		codes = append(codes, code)
	}
	sort.Ints(codes)
	for _, code := range codes {
		fmt.Printf("status %d: %d\n", code, statuses[code])
	}
	fmt.Printf("latency: p50 %v  p90 %v  p99 %v  max %v\n",
		percentile(latencies, 50).Round(time.Microsecond),
		percentile(latencies, 90).Round(time.Microsecond),
		percentile(latencies, 99).Round(time.Microsecond),
		latencies[len(latencies)-1].Round(time.Microsecond))
	for _, code := range codes {
		if code != http.StatusOK {
			return fmt.Errorf("%d requests finished with status %d", statuses[code], code)
		}
	}
	return nil
}

// percentile reads the p-th percentile from sorted latencies using the
// nearest-rank method.
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := (p*len(sorted) + 99) / 100 // ceil(p/100 * n)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// printMetrics dumps every target's /metrics exposition to stdout —
// the scriptable way to assert on counters (scripts/check.sh pins the
// warm-boot cache hit with it; no curl needed). Multiple targets are
// separated by a "# target" comment line.
func printMetrics(targets []string) error {
	client := &http.Client{Timeout: 30 * time.Second}
	for _, base := range targets {
		resp, err := client.Get(base + "/metrics")
		if err != nil {
			return fmt.Errorf("metrics %s: %w", base, err)
		}
		raw, err := io.ReadAll(resp.Body)
		if cerr := resp.Body.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("metrics %s: %w", base, err)
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("metrics %s: status %d", base, resp.StatusCode)
		}
		if len(targets) > 1 {
			fmt.Printf("# target %s\n", base)
		}
		fmt.Print(string(raw))
	}
	return nil
}

// smoke probes a running daemon end to end: /healthz answers ok, one
// /v1/design solve succeeds, and /metrics shows the request. It is the
// scriptable health check used by scripts/check.sh (no curl needed).
func smoke(base string) error {
	client := &http.Client{Timeout: 30 * time.Second}

	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	raw, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	if resp.StatusCode != http.StatusOK || string(raw) != "ok\n" {
		return fmt.Errorf("healthz: status %d body %q", resp.StatusCode, raw)
	}

	uc, err := usecases.ByName("male_simple")
	if err != nil {
		return err
	}
	body, err := specio.Marshal(uc.Build())
	if err != nil {
		return err
	}
	status, err := post(client, base+"/v1/design", body)
	if err != nil {
		return fmt.Errorf("design: %w", err)
	}
	if status != http.StatusOK {
		return fmt.Errorf("design: status %d", status)
	}

	resp, err = client.Get(base + "/metrics")
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	raw, err = io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	want := `ooc_requests_total{endpoint="design",status="200"}`
	if !strings.Contains(string(raw), want) {
		return fmt.Errorf("metrics: exposition lacks %q:\n%s", want, raw)
	}
	fmt.Println("oocload: smoke ok")
	return nil
}

// dynamicProbe exercises the transient tier over HTTP: a short
// pulsatile dosed run must answer 200 with a non-empty time series,
// and a simulated span that cannot fit the deadline budget must be
// rejected up front with a 400 — not accepted and then timed out.
func dynamicProbe(base, spec string) error {
	client := &http.Client{Timeout: 2 * time.Minute}
	uc, err := usecases.ByName(spec)
	if err != nil {
		return err
	}
	body, err := specio.Marshal(uc.Build())
	if err != nil {
		return err
	}

	resp, err := client.Post(base+"/v1/validate?model=dynamic&duration=500ms&profile=pulse:0.5@250ms&dose=1",
		"application/json", strings.NewReader(string(body)))
	if err != nil {
		return fmt.Errorf("dynamic validate: %w", err)
	}
	raw, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("dynamic validate: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("dynamic validate: status %d body %s", resp.StatusCode, raw)
	}
	var out struct {
		Steps         int       `json:"steps"`
		TimesS        []float64 `json:"times_s"`
		ArrivalTimesS []float64 `json:"arrival_times_s"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		return fmt.Errorf("dynamic validate: %w", err)
	}
	if out.Steps <= 0 || len(out.TimesS) < 2 {
		return fmt.Errorf("dynamic validate: empty series (steps=%d samples=%d)", out.Steps, len(out.TimesS))
	}
	if len(out.ArrivalTimesS) == 0 {
		return fmt.Errorf("dynamic validate: dosed run reported no arrival times: %s", raw)
	}

	status, err := post(client, base+"/v1/validate?model=dynamic&duration=24h&timeout=1s", body)
	if err != nil {
		return fmt.Errorf("over-budget dynamic validate: %w", err)
	}
	if status != http.StatusBadRequest {
		return fmt.Errorf("over-budget dynamic validate: status %d, want %d", status, http.StatusBadRequest)
	}
	fmt.Printf("oocload: dynamic probe ok: %d steps, %d samples, budget rejection enforced\n", out.Steps, len(out.TimesS))
	return nil
}

// budgetProbeRun exercises ?error_budget= model auto-selection end to
// end: a budgeted validation must answer 200 with a non-numeric rung
// in X-OOC-Model-Selected and a cache miss, the identical repeat must
// be a cache hit with the same rung, a budget tighter than every
// calibrated rung must be rejected up front with a 400 naming the
// tightest achievable rung, and an explicit ?model= must win over the
// budget (no selection header). It is the scriptable check used by
// scripts/check.sh (no curl needed).
func budgetProbeRun(base, spec string, budget float64) error {
	if budget == 0 {
		// 1% comfortably admits the cheapest calibrated rung on the
		// paper grid (approx tops out around 0.4%) without being
		// universally satisfiable.
		budget = 0.01
	}
	if err := modelsel.CheckBudget(budget); err != nil {
		return err
	}
	client := &http.Client{Timeout: 2 * time.Minute}
	uc, err := usecases.ByName(spec)
	if err != nil {
		return err
	}
	body, err := specio.Marshal(uc.Build())
	if err != nil {
		return err
	}
	postProbe := func(path string) (int, http.Header, []byte, error) {
		resp, err := client.Post(base+path, "application/json", strings.NewReader(string(body)))
		if err != nil {
			return 0, nil, nil, err
		}
		raw, err := io.ReadAll(resp.Body)
		if cerr := resp.Body.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return resp.StatusCode, resp.Header, nil, err
		}
		return resp.StatusCode, resp.Header, raw, nil
	}

	budgeted := fmt.Sprintf("/v1/validate?error_budget=%g", budget)
	status, hdr, raw, err := postProbe(budgeted)
	if err != nil {
		return fmt.Errorf("budgeted validate: %w", err)
	}
	if status != http.StatusOK {
		return fmt.Errorf("budgeted validate: status %d body %s", status, raw)
	}
	rung := hdr.Get("X-OOC-Model-Selected")
	if rung == "" {
		return fmt.Errorf("budgeted validate: no X-OOC-Model-Selected header")
	}
	if strings.HasPrefix(rung, "numeric") {
		return fmt.Errorf("budgeted validate: budget %g selected %s — expected a cheaper non-numeric rung", budget, rung)
	}
	if hdr.Get("X-Cache") != "miss" {
		return fmt.Errorf("budgeted validate: first request X-Cache %q, want miss", hdr.Get("X-Cache"))
	}
	var out struct {
		ModelSelected string  `json:"model_selected"`
		ErrorBudget   float64 `json:"error_budget"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		return fmt.Errorf("budgeted validate: %w", err)
	}
	// The budget round-trips client → query string → report as %g
	// text, so the faithful comparison is textual, not float equality.
	if out.ModelSelected != rung || fmt.Sprintf("%g", out.ErrorBudget) != fmt.Sprintf("%g", budget) {
		return fmt.Errorf("budgeted validate: report says rung %q budget %g, header says %q budget %g",
			out.ModelSelected, out.ErrorBudget, rung, budget)
	}

	status, hdr, _, err = postProbe(budgeted)
	if err != nil {
		return fmt.Errorf("repeat budgeted validate: %w", err)
	}
	if status != http.StatusOK || hdr.Get("X-Cache") != "hit" {
		return fmt.Errorf("repeat budgeted validate: status %d X-Cache %q, want 200 hit", status, hdr.Get("X-Cache"))
	}
	if hdr.Get("X-OOC-Model-Selected") != rung {
		return fmt.Errorf("repeat budgeted validate: rung %q, want %q", hdr.Get("X-OOC-Model-Selected"), rung)
	}

	status, _, raw, err = postProbe("/v1/validate?error_budget=1e-9")
	if err != nil {
		return fmt.Errorf("unmeetable budget: %w", err)
	}
	if status != http.StatusBadRequest {
		return fmt.Errorf("unmeetable budget: status %d body %s, want %d", status, raw, http.StatusBadRequest)
	}
	if !strings.Contains(string(raw), "tightest") {
		return fmt.Errorf("unmeetable budget: error does not name the tightest achievable rung: %s", raw)
	}

	status, hdr, _, err = postProbe(fmt.Sprintf("/v1/validate?model=exact&error_budget=%g", budget))
	if err != nil {
		return fmt.Errorf("explicit model override: %w", err)
	}
	if status != http.StatusOK {
		return fmt.Errorf("explicit model override: status %d", status)
	}
	if h := hdr.Get("X-OOC-Model-Selected"); h != "" {
		return fmt.Errorf("explicit model override: selection header %q present — explicit ?model= must win", h)
	}
	fmt.Printf("oocload: budget probe ok: budget %g selected %s, cached on repeat, unmeetable and override enforced\n", budget, rung)
	return nil
}

// jobsProbe exercises the asynchronous search path end to end: it
// submits a successive-halving job over the default candidate grid,
// polls /v1/jobs/{id} until the job is terminal, and checks the final
// status reports a feasible best with fewer full-fidelity evaluations
// than the 20-candidate exhaustive grid would pay.
func jobsProbe(base, spec string) error {
	client := &http.Client{Timeout: 30 * time.Second}
	uc, err := usecases.ByName(spec)
	if err != nil {
		return err
	}
	specRaw, err := specio.Marshal(uc.Build())
	if err != nil {
		return err
	}
	body, err := json.Marshal(map[string]any{
		"spec":     json.RawMessage(specRaw),
		"strategy": "halving",
		"timeout":  "2m",
	})
	if err != nil {
		return err
	}

	resp, err := client.Post(base+"/v1/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	raw, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("submit: status %d body %s", resp.StatusCode, raw)
	}
	var status struct {
		ID              string `json:"id"`
		State           string `json:"state"`
		Evaluated       int    `json:"evaluated"`
		FullEvaluations int    `json:"full_evaluations"`
		Feasible        int    `json:"feasible"`
		Error           string `json:"error"`
		BestGeometry    *struct {
			ChannelHeightUm float64 `json:"channel_height_um"`
			MinGapMm        float64 `json:"min_gap_mm"`
		} `json:"best_geometry"`
	}
	if err := json.Unmarshal(raw, &status); err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	if status.ID == "" {
		return fmt.Errorf("submit: no job id in %s", raw)
	}

	deadline := time.Now().Add(2 * time.Minute)
	for {
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s still %s after 2m", status.ID, status.State)
		}
		time.Sleep(50 * time.Millisecond)
		resp, err := client.Get(base + "/v1/jobs/" + status.ID)
		if err != nil {
			return fmt.Errorf("poll: %w", err)
		}
		raw, err := io.ReadAll(resp.Body)
		if cerr := resp.Body.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("poll: %w", err)
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("poll: status %d body %s", resp.StatusCode, raw)
		}
		if err := json.Unmarshal(raw, &status); err != nil {
			return fmt.Errorf("poll: %w", err)
		}
		if status.State == "succeeded" || status.State == "failed" || status.State == "canceled" {
			break
		}
	}
	if status.State != "succeeded" {
		return fmt.Errorf("job %s ended %s: %s", status.ID, status.State, status.Error)
	}
	if status.Feasible == 0 || status.BestGeometry == nil {
		return fmt.Errorf("job %s succeeded without a feasible best (feasible=%d)", status.ID, status.Feasible)
	}
	if status.FullEvaluations >= status.Evaluated {
		return fmt.Errorf("job %s: %d full evaluations of %d total — halving saved nothing",
			status.ID, status.FullEvaluations, status.Evaluated)
	}
	fmt.Printf("oocload: job %s succeeded: best h=%.0fµm gap=%.1fmm, %d full of %d evaluations\n",
		status.ID, status.BestGeometry.ChannelHeightUm, status.BestGeometry.MinGapMm,
		status.FullEvaluations, status.Evaluated)
	return nil
}
