// Command oocopt searches the candidate design space for the best
// feasible chip under an objective: the paper's design-automation
// loop run to an optimum instead of a single generation. The
// specification comes from a built-in use case (-usecase) or a JSON
// spec file (-spec); the candidate axes default to the documented
// grid ({100..200} µm channel heights × {2..4} mm module gaps) and
// can be overridden with -heights/-gaps.
//
// Two strategies are available: the exhaustive grid (every candidate
// validated at full fidelity) and successive halving (-strategy
// halving), which screens all candidates at a cheap fidelity rung and
// promotes only the top 1/eta fraction per rung, so just the final
// survivors pay the full-fidelity cost. -stats prints the per-rung
// schedule and evaluation counts.
//
// The search is context-driven: Ctrl-C (SIGINT/SIGTERM) or an elapsed
// -timeout budget aborts it cooperatively, keeping the partially
// evaluated candidate log.
//
// With -budget the full-fidelity model is not fixed up front: the
// cheapest calibrated rung whose worst-case deviation fits the budget
// is auto-selected for the spec's use case (internal/modelsel). An
// explicitly set -model wins over -budget.
//
// Usage:
//
//	oocopt -usecase male_simple
//	oocopt -usecase male_simple -strategy halving -stats
//	oocopt -spec myspec.json -objective pressure -model numeric -timeout 2m
//	oocopt -usecase male_simple -budget 0.001
//	oocopt -usecase male_simple -heights 100,150,200 -gaps 2,3
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ooc/internal/core"
	"ooc/internal/modelsel"
	"ooc/internal/optimize"
	"ooc/internal/sim"
	"ooc/internal/specio"
	"ooc/internal/units"
	"ooc/internal/usecases"
)

type config struct {
	usecase      string
	specPath     string
	objective    string
	strategy     string
	model        string
	scheme       string
	resolution   int
	heights      string
	gaps         string
	maxDeviation float64
	maxPressure  float64
	eta          int
	workers      int
	timeout      time.Duration
	stats        bool
	budget       float64
}

func main() {
	var cfg config
	flag.StringVar(&cfg.usecase, "usecase", "", "built-in use case name (male_simple, female_simple, ...)")
	flag.StringVar(&cfg.specPath, "spec", "", "path to a JSON specification file")
	flag.StringVar(&cfg.objective, "objective", "area", "objective to minimize: area, pressure or flow")
	flag.StringVar(&cfg.strategy, "strategy", "grid", "search strategy: grid or halving")
	flag.StringVar(&cfg.model, "model", "exact", "full-fidelity resistance model: "+sim.ModelNames)
	flag.StringVar(&cfg.scheme, "scheme", "auto", "Poisson backend for the numeric model: auto, sor or mg")
	flag.IntVar(&cfg.resolution, "resolution", 0, "numeric model cross-section resolution (0 = 32)")
	flag.StringVar(&cfg.heights, "heights", "", "comma-separated candidate channel heights in µm (default 100,125,150,175,200)")
	flag.StringVar(&cfg.gaps, "gaps", "", "comma-separated candidate module gaps in mm (default 2,2.5,3,4)")
	flag.Float64Var(&cfg.maxDeviation, "max-deviation", 0.05, "flow-deviation feasibility budget (fraction)")
	flag.Float64Var(&cfg.maxPressure, "max-pressure", 0, "pump-pressure cap in Pa (0 = unbounded)")
	flag.IntVar(&cfg.eta, "eta", 0, "halving keep divisor: each rung keeps ceil(n/eta) survivors (0 = 2)")
	flag.IntVar(&cfg.workers, "workers", 0, "concurrent candidate evaluations per halving rung (0 = GOMAXPROCS)")
	flag.DurationVar(&cfg.timeout, "timeout", 0, "overall search deadline (0 = none)")
	flag.BoolVar(&cfg.stats, "stats", false, "print the rung schedule and the full candidate log")
	flag.Float64Var(&cfg.budget, "budget", 0, "error budget as a fraction in (0, 1]: auto-select the cheapest calibrated full-fidelity rung within it (0 disables; explicit -model wins)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: oocopt [flags]")
		os.Exit(2)
	}

	// Flag validation happens before any work: a typo'd name is a
	// usage error (exit 2 with the valid spellings), not a late
	// runtime failure.
	opt, err := searchOptions(cfg)
	if err == nil && cfg.budget != 0 {
		err = modelsel.CheckBudget(cfg.budget)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "oocopt:", err)
		fmt.Fprintf(os.Stderr, "usage: oocopt [-objective {%s}] [-strategy {%s}] [-model {%s}] [-scheme {%s}] [flags]\n",
			optimize.ObjectiveNames, optimize.StrategyNames, sim.ModelNames, sim.SchemeNames)
		os.Exit(2)
	}
	spec, err := loadSpec(cfg.usecase, cfg.specPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "oocopt:", err)
		os.Exit(2)
	}
	// Budget selection waits for the spec so the per-use-case
	// calibration bound (keyed by the spec's name) applies. The flag's
	// -model default "exact" is indistinguishable from an explicit
	// choice by value alone, so command-line presence decides the
	// explicit-model-wins rule.
	modelSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "model" {
			modelSet = true
		}
	})
	if cfg.budget != 0 {
		if modelSet {
			fmt.Fprintln(os.Stderr, "oocopt: explicit -model wins; -budget ignored")
		} else {
			table, err := modelsel.Default()
			if err == nil {
				var rung modelsel.Rung
				if rung, err = table.Select(spec.Name, cfg.budget); err == nil {
					rung.Apply(&opt.Sim)
					opt.Sim.ErrorBudget = cfg.budget
					fmt.Fprintf(os.Stderr, "oocopt: error budget %g selected %s (calibrated worst-case deviation %.6g)\n",
						cfg.budget, rung.Name, rung.Bound(spec.Name).Worst())
				}
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "oocopt:", err)
				os.Exit(2)
			}
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}

	res, err := optimize.Search(ctx, spec, opt)
	// An aborted or infeasible search still carries a candidate log
	// worth printing before the error decides the exit code.
	if res != nil {
		fmt.Print(resultText(res, opt, cfg.stats))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "oocopt:", err)
		if errors.Is(err, optimize.ErrInfeasible) {
			os.Exit(3)
		}
		os.Exit(1)
	}
}

// loadSpec resolves the -usecase/-spec flags into a specification.
func loadSpec(useCase, specPath string) (core.Spec, error) {
	switch {
	case useCase != "" && specPath != "":
		return core.Spec{}, fmt.Errorf("use either -usecase or -spec, not both")
	case useCase != "":
		uc, err := usecases.ByName(useCase)
		if err != nil {
			return core.Spec{}, err
		}
		return uc.Build(), nil
	case specPath != "":
		raw, err := os.ReadFile(specPath)
		if err != nil {
			return core.Spec{}, err
		}
		return specio.Parse(raw)
	default:
		return core.Spec{}, fmt.Errorf("need -usecase or -spec (try -usecase male_simple)")
	}
}

// searchOptions resolves the flags into search options. Unknown
// spellings surface the valid names.
func searchOptions(cfg config) (optimize.Options, error) {
	var opt optimize.Options
	var err error
	if opt.Objective, err = optimize.ParseObjective(cfg.objective); err != nil {
		return optimize.Options{}, err
	}
	if opt.Strategy, err = optimize.ParseStrategy(cfg.strategy); err != nil {
		return optimize.Options{}, err
	}
	if opt.Sim.Model, err = sim.ParseModel(cfg.model); err != nil {
		return optimize.Options{}, err
	}
	if opt.Sim.Model == sim.ModelDynamic {
		// The search scores settled final states, so the documented
		// transient defaults are the right configuration.
		opt.Sim.Dynamic = sim.DefaultDynamicOptions()
	}
	if opt.Sim.Scheme, err = sim.ParseScheme(cfg.scheme); err != nil {
		return optimize.Options{}, err
	}
	opt.Sim.NumericResolution = cfg.resolution
	opt.Constraints = optimize.Constraints{MaxFlowDeviation: cfg.maxDeviation}
	if cfg.maxPressure > 0 {
		opt.Constraints.MaxPumpPressure = units.Pascals(cfg.maxPressure)
	}
	if opt.ChannelHeights, err = parseAxis(cfg.heights, "-heights", units.Micrometres); err != nil {
		return optimize.Options{}, err
	}
	if opt.MinGaps, err = parseAxis(cfg.gaps, "-gaps", units.Millimetres); err != nil {
		return optimize.Options{}, err
	}
	opt.HalvingEta = cfg.eta
	opt.Workers = cfg.workers
	return opt, nil
}

// parseAxis converts a comma-separated flag value into candidate
// lengths; an empty flag keeps the default axis (nil).
func parseAxis(raw, flagName string, unit func(float64) units.Length) ([]units.Length, error) {
	if raw == "" {
		return nil, nil
	}
	parts := strings.Split(raw, ",")
	axis := make([]units.Length, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("%s: %q is not a positive number", flagName, p)
		}
		axis = append(axis, unit(v))
	}
	return axis, nil
}

// resultText renders a search result: the winner (when any), the
// evaluation economy, and with stats the rung schedule and candidate
// log.
func resultText(res *optimize.Result, opt optimize.Options, stats bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "oocopt: %s search, minimize %s: %d evaluations (%d full fidelity), %d feasible\n",
		opt.Strategy, opt.Objective, res.Evaluated, res.FullEvaluations, res.Feasible)
	if res.BestCandidate != nil {
		c := res.BestCandidate
		fmt.Fprintf(&b, "best: h=%.0fµm gap=%.2gmm score=%.6g\n",
			c.ChannelHeight.Micrometres(), c.MinGap.Millimetres(), c.Score)
		if res.Best != nil {
			fmt.Fprintf(&b, "chip: %.1f × %.1f mm, pump %.0f Pa, max flow deviation %.2f%%\n",
				res.Best.Bounds.Width()*1e3, res.Best.Bounds.Height()*1e3,
				res.BestReport.PumpPressure.Pascals(), res.BestReport.MaxFlowDeviation*100)
		}
	}
	if !stats {
		return b.String()
	}
	for _, rg := range res.Rungs {
		fmt.Fprintf(&b, "rung %d (%s): evaluated %d, kept %d\n", rg.Rung, rg.Model, rg.Evaluated, rg.Kept)
	}
	for _, c := range res.Candidates {
		verdict := "feasible"
		if !c.Feasible {
			verdict = c.Reason
		}
		score := "-"
		if !math.IsNaN(c.Score) {
			score = fmt.Sprintf("%.6g", c.Score)
		}
		fmt.Fprintf(&b, "  r%d h=%.0fµm gap=%.2gmm score=%s %s\n",
			c.Rung, c.ChannelHeight.Micrometres(), c.MinGap.Millimetres(), score, verdict)
	}
	return b.String()
}
