package main

import (
	"context"
	"strings"
	"testing"

	"ooc/internal/optimize"
	"ooc/internal/sim"
	"ooc/internal/units"
)

// TestFlagValidation: every name flag resolves through the shared
// parsers, and a typo'd spelling fails with an error that lists the
// valid names — the message main prints before exiting 2.
func TestFlagValidation(t *testing.T) {
	base := config{objective: "area", strategy: "grid", model: "exact", scheme: "auto", maxDeviation: 0.05}

	opt, err := searchOptions(base)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Objective != optimize.MinimizeArea || opt.Strategy != optimize.StrategyGrid {
		t.Fatalf("defaults resolved wrong: %+v", opt)
	}

	// The dynamic model resolves with populated (validating) transient
	// options — a search must never trip the zero-sentinel check.
	dcfg := base
	dcfg.model = "dynamic"
	dopt, err := searchOptions(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	if dopt.Sim.Model != sim.ModelDynamic {
		t.Fatalf("model = %v, want dynamic", dopt.Sim.Model)
	}
	if err := dopt.Sim.Dynamic.Validate(); err != nil {
		t.Fatalf("dynamic options not populated: %v", err)
	}

	for _, tc := range []struct {
		mutate func(*config)
		names  string
	}{
		{func(c *config) { c.objective = "beauty" }, optimize.ObjectiveNames},
		{func(c *config) { c.strategy = "annealing" }, optimize.StrategyNames},
		{func(c *config) { c.model = "bogus" }, sim.ModelNames},
		{func(c *config) { c.scheme = "multigrid" }, sim.SchemeNames},
		{func(c *config) { c.heights = "100,banana" }, "-heights"},
		{func(c *config) { c.gaps = "2,-3" }, "-gaps"},
	} {
		cfg := base
		tc.mutate(&cfg)
		if _, err := searchOptions(cfg); err == nil {
			t.Errorf("config %+v: expected an error", cfg)
		} else if !strings.Contains(err.Error(), tc.names) {
			t.Errorf("error %v does not mention %q", err, tc.names)
		}
	}
}

// TestParseAxis: comma-separated values convert through the unit
// constructor; the empty flag keeps the default axis.
func TestParseAxis(t *testing.T) {
	axis, err := parseAxis(" 100, 150 ,200", "-heights", units.Micrometres)
	if err != nil {
		t.Fatal(err)
	}
	if len(axis) != 3 || int(axis[1].Micrometres()+0.5) != 150 {
		t.Fatalf("axis %v", axis)
	}
	if axis, err := parseAxis("", "-heights", units.Micrometres); err != nil || axis != nil {
		t.Fatalf("empty flag: %v, %v", axis, err)
	}
}

// TestSearchAndRender: a small real search end to end through the
// CLI's option building and result rendering.
func TestSearchAndRender(t *testing.T) {
	cfg := config{
		usecase: "male_simple", objective: "area", strategy: "halving",
		model: "exact", scheme: "auto", maxDeviation: 0.05,
		heights: "100,150,200", gaps: "2,3",
	}
	opt, err := searchOptions(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := loadSpec(cfg.usecase, "")
	if err != nil {
		t.Fatal(err)
	}
	res, err := optimize.Search(context.Background(), spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	out := resultText(res, opt, true)
	for _, want := range []string{"halving search", "best:", "rung 0", "chip:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if res.FullEvaluations >= res.Evaluated {
		t.Fatalf("halving saved nothing: %d full of %d", res.FullEvaluations, res.Evaluated)
	}
}

// TestLoadSpecUsage: the -usecase/-spec combinations main treats as
// usage errors.
func TestLoadSpecUsage(t *testing.T) {
	if _, err := loadSpec("", ""); err == nil {
		t.Fatal("no source: expected an error")
	}
	if _, err := loadSpec("male_simple", "also.json"); err == nil {
		t.Fatal("both sources: expected an error")
	}
	if _, err := loadSpec("not_a_usecase", ""); err == nil {
		t.Fatal("unknown use case: expected an error")
	}
}
