// Command ooclint runs the repo's domain-aware static-analysis suite
// (internal/analysis) over a Go module tree.
//
// Usage:
//
//	ooclint [-rules dimension,floatcmp,…] [-list] [path]
//
// path defaults to the current directory; a trailing /... is accepted
// (and implied — the whole module under path is always analyzed).
//
// Exit codes: 0 — no findings; 1 — one or more diagnostics reported;
// 2 — usage or load/type-check failure.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"ooc/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("ooclint", flag.ContinueOnError)
	fs.SetOutput(errw)
	rules := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	list := fs.Bool("list", false, "list available rules and exit")
	modPath := fs.String("mod", "", "treat the path as the root of a module with this path (for trees without go.mod)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.Analyzers() {
			say(out, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := analysis.Select(*rules)
	if err != nil {
		say(errw, "ooclint: %v\n", err)
		return 2
	}
	root := "."
	if fs.NArg() > 0 {
		root = strings.TrimSuffix(fs.Arg(0), "...")
		if root = strings.TrimSuffix(root, "/"); root == "" {
			root = "."
		}
	}
	var mod *analysis.Module
	if *modPath != "" {
		mod, err = analysis.LoadTree(root, *modPath)
	} else {
		mod, err = analysis.LoadModule(root)
	}
	if err != nil {
		say(errw, "ooclint: %v\n", err)
		return 2
	}
	diags := analysis.Run(mod, analyzers)
	cwd, _ := os.Getwd()
	for _, d := range diags {
		file := d.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = rel
			}
		}
		say(out, "%s:%d:%d: %s: %s\n", file, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		say(errw, "ooclint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// say writes formatted output, deliberately discarding the write
// error: diagnostics go to stdio and there is no recovery path.
func say(w io.Writer, format string, a ...any) {
	_, _ = fmt.Fprintf(w, format, a...)
}
