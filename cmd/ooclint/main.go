// Command ooclint runs the repo's domain-aware static-analysis suite
// (internal/analysis) over a Go module tree.
//
// Usage:
//
//	ooclint [-rules dimension,floatcmp,…] [-format text|json|github]
//	        [-workers N] [-baseline file | -no-baseline]
//	        [-write-baseline] [-list] [path]
//
// path defaults to the current directory; a trailing /... is accepted
// (and implied — the whole module under path is always analyzed).
//
// Findings accepted by the committed baseline (.ooclint-baseline at
// the module root, or the file named by -baseline) are suppressed and
// counted on stderr; -no-baseline disables the lookup and
// -write-baseline rewrites the file to accept exactly the current
// findings.
//
// Exit codes:
//
//	0 — no findings (after baseline suppression), or -list/-write-baseline
//	1 — one or more diagnostics reported
//	2 — usage error, unknown rule/format, or load/type-check failure
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"ooc/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("ooclint", flag.ContinueOnError)
	fs.SetOutput(errw)
	rules := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	list := fs.Bool("list", false, "list available rules and exit")
	modPath := fs.String("mod", "", "treat the path as the root of a module with this path (for trees without go.mod)")
	format := fs.String("format", "text", "output format: text, json, or github")
	workers := fs.Int("workers", 0, "number of concurrent package analyses (<=0 selects GOMAXPROCS)")
	baselinePath := fs.String("baseline", "", "baseline file of accepted findings (default: <module root>/"+analysis.BaselineFile+" when present)")
	noBaseline := fs.Bool("no-baseline", false, "ignore any baseline file; report every finding")
	writeBaseline := fs.Bool("write-baseline", false, "rewrite the baseline file to accept exactly the current findings and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.Analyzers() {
			say(out, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	switch *format {
	case "text", "json", "github":
	default:
		say(errw, "ooclint: unknown format %q (want text, json, or github)\n", *format)
		return 2
	}
	if *noBaseline && *baselinePath != "" {
		say(errw, "ooclint: -no-baseline and -baseline are mutually exclusive\n")
		return 2
	}
	analyzers, err := analysis.Select(*rules)
	if err != nil {
		say(errw, "ooclint: %v\n", err)
		return 2
	}
	root := "."
	if fs.NArg() > 0 {
		root = strings.TrimSuffix(fs.Arg(0), "...")
		if root = strings.TrimSuffix(root, "/"); root == "" {
			root = "."
		}
	}
	var mod *analysis.Module
	if *modPath != "" {
		mod, err = analysis.LoadTree(root, *modPath)
	} else {
		mod, err = analysis.LoadModule(root)
	}
	if err != nil {
		say(errw, "ooclint: %v\n", err)
		return 2
	}
	diags := analysis.RunWorkers(mod, analyzers, *workers)

	baseFile := *baselinePath
	if baseFile == "" && !*noBaseline {
		if def := filepath.Join(mod.Root, analysis.BaselineFile); fileExists(def) {
			baseFile = def
		}
	}
	if *writeBaseline {
		if baseFile == "" {
			baseFile = filepath.Join(mod.Root, analysis.BaselineFile)
		}
		b := analysis.BaselineOf(mod.Root, diags)
		if err := os.WriteFile(baseFile, b.Format(), 0o644); err != nil {
			say(errw, "ooclint: %v\n", err)
			return 2
		}
		say(errw, "ooclint: wrote %d accepted finding(s) to %s\n", b.Len(), baseFile)
		return 0
	}
	suppressed := 0
	if baseFile != "" {
		data, err := os.ReadFile(baseFile)
		if err != nil {
			say(errw, "ooclint: %v\n", err)
			return 2
		}
		b, err := analysis.ParseBaseline(data)
		if err != nil {
			say(errw, "ooclint: %s: %v\n", baseFile, err)
			return 2
		}
		diags, suppressed = analysis.FilterBaseline(b, mod.Root, diags)
	}

	switch *format {
	case "json":
		printJSON(out, mod.Root, diags)
	case "github":
		printGitHub(out, mod.Root, diags)
	default:
		printText(out, diags)
	}
	if suppressed > 0 {
		say(errw, "ooclint: %d finding(s) suppressed by baseline %s\n", suppressed, baseFile)
	}
	if len(diags) > 0 {
		say(errw, "ooclint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// printText writes the classic compiler-style line per finding, with
// paths relative to the current directory when they are below it.
func printText(out io.Writer, diags []analysis.Diagnostic) {
	cwd, _ := os.Getwd()
	for _, d := range diags {
		file := d.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = rel
			}
		}
		say(out, "%s:%d:%d: %s: %s\n", file, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
}

// jsonDiag is the stable machine-readable shape of one finding. File
// is slash-separated and relative to the module root, so output is
// independent of where ooclint was invoked from.
type jsonDiag struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func relToRoot(root, file string) string {
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(file)
}

// printJSON writes the findings as one JSON array (never null), in
// the same deterministic order as the text output.
func printJSON(out io.Writer, root string, diags []analysis.Diagnostic) {
	arr := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		arr = append(arr, jsonDiag{
			Analyzer: d.Analyzer,
			File:     relToRoot(root, d.Pos.Filename),
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	_ = enc.Encode(arr)
}

// printGitHub writes GitHub Actions workflow commands, one
// `::error …` annotation per finding, so CI runs attach findings to
// the offending lines in the diff view.
func printGitHub(out io.Writer, root string, diags []analysis.Diagnostic) {
	for _, d := range diags {
		say(out, "::error file=%s,line=%d,col=%d::%s: %s\n",
			relToRoot(root, d.Pos.Filename), d.Pos.Line, d.Pos.Column,
			d.Analyzer, githubEscape(d.Message))
	}
}

// githubEscape encodes the characters the workflow-command grammar
// reserves in message data.
func githubEscape(s string) string {
	r := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A")
	return r.Replace(s)
}

func fileExists(path string) bool {
	info, err := os.Stat(path)
	return err == nil && !info.IsDir()
}

// say writes formatted output, deliberately discarding the write
// error: diagnostics go to stdio and there is no recovery path.
func say(w io.Writer, format string, a ...any) {
	_, _ = fmt.Fprintf(w, format, a...)
}
