package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureArgs targets the shared analysis fixture tree, which is
// guaranteed (by internal/analysis's golden test) to produce findings
// for every analyzer.
func fixtureArgs(extra ...string) []string {
	args := append([]string{"-mod", "fixture"}, extra...)
	return append(args, filepath.Join("..", "..", "internal", "analysis", "testdata", "src"))
}

// writeTree materializes files (path → contents) under a fresh temp
// dir and returns its root.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for path, src := range files {
		full := filepath.Join(root, filepath.FromSlash(path))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

const cleanSrc = `package pkg

// Add is analyzer-silent: no floats, errors, units, or caches.
func Add(a, b int) int { return a + b }
`

const dirtySrc = `package pkg

// Eq trips floatcmp: an exact == on float64 operands.
func Eq(a, b float64) bool { return a == b }
`

// TestExitCodes pins the documented contract: 0 clean, 1 findings,
// 2 usage/load errors.
func TestExitCodes(t *testing.T) {
	clean := writeTree(t, map[string]string{"pkg/pkg.go": cleanSrc})
	dirty := writeTree(t, map[string]string{"pkg/pkg.go": dirtySrc})
	broken := writeTree(t, map[string]string{"pkg/pkg.go": "package pkg\nfunc {\n"})

	cases := []struct {
		name string
		args []string
		want int
	}{
		{"clean tree", []string{"-mod", "m", clean}, 0},
		{"findings", []string{"-mod", "m", dirty}, 1},
		{"fixture findings", fixtureArgs(), 1},
		{"parse error", []string{"-mod", "m", broken}, 2},
		{"missing path", []string{filepath.Join(clean, "no-such-dir")}, 2},
		{"unknown rule", []string{"-rules", "nonsense", "-mod", "m", clean}, 2},
		{"unknown format", []string{"-format", "xml", "-mod", "m", clean}, 2},
		{"unknown flag", []string{"-frobnicate"}, 2},
		{"baseline flag conflict", []string{"-no-baseline", "-baseline", "x", "-mod", "m", clean}, 2},
		{"missing baseline file", []string{"-baseline", filepath.Join(clean, "absent"), "-mod", "m", clean}, 2},
		{"list", []string{"-list"}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errw bytes.Buffer
			if got := run(tc.args, &out, &errw); got != tc.want {
				t.Errorf("run(%v) = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					tc.args, got, tc.want, out.String(), errw.String())
			}
		})
	}
}

// TestJSONFormat checks -format json emits a parseable array with
// module-root-relative slash paths and 1-based positions.
func TestJSONFormat(t *testing.T) {
	root := writeTree(t, map[string]string{"pkg/pkg.go": dirtySrc})
	var out, errw bytes.Buffer
	if got := run([]string{"-format", "json", "-mod", "m", root}, &out, &errw); got != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", got, errw.String())
	}
	var diags []struct {
		Analyzer string `json:"analyzer"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if len(diags) == 0 {
		t.Fatal("JSON output is empty despite exit code 1")
	}
	for _, d := range diags {
		if d.File != "pkg/pkg.go" {
			t.Errorf("file = %q, want module-root-relative %q", d.File, "pkg/pkg.go")
		}
		if d.Analyzer == "" || d.Message == "" || d.Line <= 0 || d.Col <= 0 {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
	}
}

// TestGitHubFormat checks -format github writes one ::error workflow
// command per finding.
func TestGitHubFormat(t *testing.T) {
	root := writeTree(t, map[string]string{"pkg/pkg.go": dirtySrc})
	var out, errw bytes.Buffer
	if got := run([]string{"-format", "github", "-mod", "m", root}, &out, &errw); got != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", got, errw.String())
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	for _, line := range lines {
		if !strings.HasPrefix(line, "::error file=pkg/pkg.go,line=") {
			t.Errorf("line is not a github annotation with a root-relative path: %q", line)
		}
		if !strings.Contains(line, "::floatcmp: ") {
			t.Errorf("annotation does not carry analyzer-prefixed message: %q", line)
		}
	}
}

// TestGitHubEscape pins the workflow-command escaping of reserved
// characters in message data.
func TestGitHubEscape(t *testing.T) {
	if got := githubEscape("50% off\r\nnewline"); got != "50%25 off%0D%0Anewline" {
		t.Errorf("githubEscape = %q", got)
	}
}

// TestWorkersByteIdentical runs the full fixture tree serially and
// with several worker counts and demands byte-identical stdout — the
// CLI-level version of the RunWorkers determinism guarantee.
func TestWorkersByteIdentical(t *testing.T) {
	outputs := make(map[string]string)
	for _, w := range []string{"1", "2", "8"} {
		var out, errw bytes.Buffer
		if got := run(fixtureArgs("-workers", w), &out, &errw); got != 1 {
			t.Fatalf("workers=%s exit = %d, want 1; stderr:\n%s", w, got, errw.String())
		}
		outputs[w] = out.String()
	}
	if outputs["1"] != outputs["2"] || outputs["1"] != outputs["8"] {
		t.Errorf("stdout differs across worker counts:\n--- 1 ---\n%s--- 2 ---\n%s--- 8 ---\n%s",
			outputs["1"], outputs["2"], outputs["8"])
	}
}

// TestBaselineWorkflow exercises the full loop: findings → exit 1;
// -write-baseline → exit 0 and a canonical file; rerun → findings
// suppressed, exit 0; -no-baseline → findings reappear; a fixed
// finding leaves a stale entry that no longer suppresses anything.
func TestBaselineWorkflow(t *testing.T) {
	root := writeTree(t, map[string]string{"pkg/pkg.go": dirtySrc})
	mod := []string{"-mod", "m", root}

	var out, errw bytes.Buffer
	if got := run(mod, &out, &errw); got != 1 {
		t.Fatalf("pre-baseline exit = %d, want 1", got)
	}

	out.Reset()
	errw.Reset()
	if got := run(append([]string{"-write-baseline"}, mod...), &out, &errw); got != 0 {
		t.Fatalf("-write-baseline exit = %d, want 0; stderr:\n%s", got, errw.String())
	}
	basePath := filepath.Join(root, ".ooclint-baseline")
	if _, err := os.Stat(basePath); err != nil {
		t.Fatalf("baseline file not written: %v", err)
	}

	out.Reset()
	errw.Reset()
	if got := run(mod, &out, &errw); got != 0 {
		t.Fatalf("baselined exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", got, out.String(), errw.String())
	}
	if out.Len() != 0 {
		t.Errorf("baselined run still printed findings:\n%s", out.String())
	}
	if !strings.Contains(errw.String(), "suppressed by baseline") {
		t.Errorf("stderr does not report the suppression count:\n%s", errw.String())
	}

	out.Reset()
	errw.Reset()
	if got := run(append([]string{"-no-baseline"}, mod...), &out, &errw); got != 1 {
		t.Fatalf("-no-baseline exit = %d, want 1", got)
	}

	// Fix the finding: the stale baseline entry must not suppress the
	// now-clean tree into an error, and the run stays at exit 0.
	if err := os.WriteFile(filepath.Join(root, "pkg", "pkg.go"), []byte(cleanSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errw.Reset()
	if got := run(mod, &out, &errw); got != 0 {
		t.Fatalf("clean tree with stale baseline exit = %d, want 0; stderr:\n%s", got, errw.String())
	}
}
