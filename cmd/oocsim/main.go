// Command oocsim validates a generated design file (as written by
// oocgen -json) with the CFD-substitute pipeline: it re-solves the
// chip's channel network under the exact duct-resistance model with
// laminar minor losses and reports per-module flow-rate and perfusion
// deviations from the specification embedded in the file.
//
// The validation is context-driven: Ctrl-C (SIGINT/SIGTERM) or an
// elapsed -timeout budget aborts it cooperatively. Under
// -model numeric a deadline degrades per-channel to the analytic
// exact resistance instead of failing; degraded channels are listed.
//
// Usage:
//
//	oocsim chip.json
//	oocsim -model approx -no-bends -no-junctions chip.json   # self-consistency check
//	oocsim -model numeric -timeout 30s -stats chip.json      # CFD-lite with telemetry
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"ooc/internal/obs"
	"ooc/internal/render"
	"ooc/internal/report"
	"ooc/internal/sim"
)

func main() {
	model := flag.String("model", "exact", "resistance model: exact, approx or numeric")
	noBends := flag.Bool("no-bends", false, "disable meander bend losses")
	noJunctions := flag.Bool("no-junctions", false, "disable T-junction losses")
	timeout := flag.Duration("timeout", 0, "overall deadline for the validation (0 = none)")
	stats := flag.Bool("stats", false, "print solver telemetry after the report")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: oocsim [flags] design.json")
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var col *obs.Collector
	if *stats {
		col = obs.NewCollector()
		ctx = obs.WithCollector(ctx, col)
	}

	err := run(ctx, flag.Arg(0), *model, *noBends, *noJunctions)
	if col != nil {
		// Telemetry covers whatever ran, including aborted solves.
		fmt.Print(col.Snapshot().Format())
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "oocsim:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, path, model string, noBends, noJunctions bool) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	design, err := render.ParseJSON(raw)
	if err != nil {
		return err
	}
	opt := sim.Options{
		DisableBendLosses:     noBends,
		DisableJunctionLosses: noJunctions,
	}
	switch model {
	case "exact":
		opt.Model = sim.ModelExact
	case "approx":
		opt.Model = sim.ModelApprox
	case "numeric":
		opt.Model = sim.ModelNumeric
	default:
		return fmt.Errorf("unknown model %q (exact, approx or numeric)", model)
	}
	rep, err := sim.ValidateContext(ctx, design, opt)
	if err != nil {
		return err
	}
	fmt.Print(report.FormatFig4(rep))
	fmt.Printf("aggregate: flow dev avg %.2f%% max %.2f%% | perfusion dev avg %.2f%% max %.2f%%\n",
		rep.AvgFlowDeviation*100, rep.MaxFlowDeviation*100,
		rep.AvgPerfDeviation*100, rep.MaxPerfDeviation*100)
	if len(rep.Degradations) > 0 {
		fmt.Printf("degraded to analytic exact resistance under deadline: %d channels (%s)\n",
			len(rep.Degradations), strings.Join(rep.Degradations, ", "))
	}
	return nil
}
