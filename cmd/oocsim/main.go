// Command oocsim validates a generated design file (as written by
// oocgen -json) with the CFD-substitute pipeline: it re-solves the
// chip's channel network under the exact duct-resistance model with
// laminar minor losses and reports per-module flow-rate and perfusion
// deviations from the specification embedded in the file.
//
// The validation is context-driven: Ctrl-C (SIGINT/SIGTERM) or an
// elapsed -timeout budget aborts it cooperatively. Under
// -model numeric a deadline degrades per-channel to the analytic
// exact resistance instead of failing; degraded channels are listed.
//
// Under -model dynamic the steady solve is replaced by the transient
// tier (internal/dyn): pressures and flows evolve from rest under a
// pump profile, optionally transporting a dosed species from the inlet
// through the organ chain. The report gains a time-series table (or
// the full series as CSV with -csv).
//
// With -budget the model is not fixed up front: the cheapest
// calibrated fidelity rung whose worst-case deviation from the
// numeric@128 reference fits the budget is auto-selected per design
// (internal/modelsel). An explicitly set -model always wins over
// -budget.
//
// Usage:
//
//	oocsim chip.json
//	oocsim -model approx -no-bends -no-junctions chip.json   # self-consistency check
//	oocsim -model numeric -timeout 30s -stats chip.json      # CFD-lite with telemetry
//	oocsim -budget 0.001 chip.json                           # auto-select rung within 0.1% error
//	oocsim -model dynamic -duration 2s -pump-profile pulse:0.5@500ms -dose 1 chip.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ooc/internal/dyn"
	"ooc/internal/modelsel"
	"ooc/internal/obs"
	"ooc/internal/render"
	"ooc/internal/report"
	"ooc/internal/sim"
)

func main() {
	def := sim.DefaultDynamicOptions()
	model := flag.String("model", "exact", "resistance model: "+sim.ModelNames)
	scheme := flag.String("scheme", "auto", "Poisson backend for the numeric model: auto, sor or mg")
	noBends := flag.Bool("no-bends", false, "disable meander bend losses")
	noJunctions := flag.Bool("no-junctions", false, "disable T-junction losses")
	timeout := flag.Duration("timeout", 0, "overall deadline for the validation (0 = none)")
	stats := flag.Bool("stats", false, "print solver telemetry after the report")
	duration := flag.Duration("duration", def.Duration, "dynamic model: simulated time span")
	maxStep := flag.Duration("max-step", def.MaxStep, "dynamic model: adaptive integrator step cap")
	sampleEvery := flag.Duration("sample-every", def.SampleEvery, "dynamic model: output sample cadence")
	profile := flag.String("pump-profile", "constant", "dynamic model: pump drive shape ("+dyn.ProfileNames+")")
	dose := flag.Float64("dose", 0, "dynamic model: inlet dose concentration; 0 disables species transport")
	csv := flag.Bool("csv", false, "dynamic model: print the full time series as CSV instead of the report")
	budget := flag.Float64("budget", 0, "error budget as a fraction in (0, 1]: auto-select the cheapest calibrated model rung within it (0 disables; explicit -model wins)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: oocsim [flags] design.json")
		os.Exit(2)
	}
	// Flag validation happens before any file I/O: a typo'd -model,
	// -scheme or -budget is a usage error (exit 2 with the valid
	// spellings), not a late runtime failure after the design was
	// already parsed.
	opt, err := modelOptions(*model, *scheme, *noBends, *noJunctions)
	if err == nil && opt.Model == sim.ModelDynamic {
		opt.Dynamic, err = dynamicOptions(*duration, *maxStep, *sampleEvery, *profile, *dose)
	}
	if err == nil && *budget != 0 {
		err = modelsel.CheckBudget(*budget)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "oocsim:", err)
		fmt.Fprintf(os.Stderr, "usage: oocsim [-model {%s}] [-scheme {%s}] [flags] design.json\n", sim.ModelNames, sim.SchemeNames)
		os.Exit(2)
	}
	// An explicitly chosen -model beats -budget selection — the flag's
	// default "exact" is indistinguishable from an explicit choice by
	// value alone, so presence on the command line decides.
	modelSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "model" {
			modelSet = true
		}
	})
	effectiveBudget := *budget
	if modelSet && *budget != 0 {
		fmt.Fprintln(os.Stderr, "oocsim: explicit -model wins; -budget ignored")
		effectiveBudget = 0
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var col *obs.Collector
	if *stats {
		col = obs.NewCollector()
		ctx = obs.WithCollector(ctx, col)
	}

	err = run(ctx, flag.Arg(0), opt, effectiveBudget, *csv)
	if col != nil {
		// Telemetry covers whatever ran, including aborted solves.
		fmt.Print(col.Snapshot().Format())
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "oocsim:", err)
		os.Exit(1)
	}
}

// modelOptions resolves the model/scheme flags and loss switches into
// validation options.
func modelOptions(model, scheme string, noBends, noJunctions bool) (sim.Options, error) {
	o := sim.DefaultOptions()
	m, err := sim.ParseModel(model)
	if err != nil {
		return o, err
	}
	s, err := sim.ParseScheme(scheme)
	if err != nil {
		return o, err
	}
	o.Model = m
	o.Scheme = s
	o.DisableBendLosses = noBends
	o.DisableJunctionLosses = noJunctions
	return o, nil
}

// dynamicOptions resolves the transient-tier flags; a -dose above zero
// enables species transport, dosed at the inlet for the whole run.
func dynamicOptions(duration, maxStep, sampleEvery time.Duration, profile string, dose float64) (sim.DynamicOptions, error) {
	o := sim.DefaultDynamicOptions()
	o.Duration = duration
	o.MaxStep = maxStep
	o.SampleEvery = sampleEvery
	p, err := dyn.ParseProfile(profile)
	if err != nil {
		return o, err
	}
	o.Profile = p
	if dose < 0 {
		return o, fmt.Errorf("-dose must be non-negative, got %g", dose)
	}
	if dose > 0 {
		o.Species = dyn.Species{
			Enabled:           true,
			DoseConcentration: dose,
			DoseStart:         0,
			DoseDuration:      duration.Seconds(),
			ArrivalThreshold:  0.1,
		}
	}
	return o, o.Validate()
}

func run(ctx context.Context, path string, opt sim.Options, budget float64, csv bool) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	design, err := render.ParseJSON(raw)
	if err != nil {
		return err
	}
	// Budget selection waits until the design is parsed so the
	// per-use-case calibration bound (keyed by the design's name) can
	// be used; unknown names fall back to the global bound.
	if budget != 0 {
		table, err := modelsel.Default()
		if err != nil {
			return err
		}
		rung, err := table.Select(design.Name, budget)
		if err != nil {
			return err
		}
		rung.Apply(&opt)
		opt.ErrorBudget = budget
		fmt.Printf("model auto-selected: %s (calibrated worst-case deviation %.6g within budget %g)\n",
			rung.Name, rung.Bound(design.Name).Worst(), budget)
	}
	if opt.Model == sim.ModelDynamic {
		dr, err := sim.ValidateDynamicContext(ctx, design, opt)
		if err != nil {
			return err
		}
		if csv {
			fmt.Print(report.DynamicCSV(dr))
		} else {
			fmt.Print(report.FormatDynamic(dr))
		}
		return nil
	}
	rep, err := sim.ValidateContext(ctx, design, opt)
	if err != nil {
		return err
	}
	fmt.Print(report.FormatFig4(rep))
	fmt.Printf("aggregate: flow dev avg %.2f%% max %.2f%% | perfusion dev avg %.2f%% max %.2f%%\n",
		rep.AvgFlowDeviation*100, rep.MaxFlowDeviation*100,
		rep.AvgPerfDeviation*100, rep.MaxPerfDeviation*100)
	if len(rep.Degradations) > 0 {
		fmt.Printf("degraded to analytic exact resistance under deadline: %d channels (%s)\n",
			len(rep.Degradations), strings.Join(rep.Degradations, ", "))
	}
	return nil
}
