// Command oocsim validates a generated design file (as written by
// oocgen -json) with the CFD-substitute pipeline: it re-solves the
// chip's channel network under the exact duct-resistance model with
// laminar minor losses and reports per-module flow-rate and perfusion
// deviations from the specification embedded in the file.
//
// Usage:
//
//	oocsim chip.json
//	oocsim -model approx -no-bends -no-junctions chip.json   # self-consistency check
package main

import (
	"flag"
	"fmt"
	"os"

	"ooc/internal/render"
	"ooc/internal/report"
	"ooc/internal/sim"
)

func main() {
	model := flag.String("model", "exact", "resistance model: exact or approx")
	noBends := flag.Bool("no-bends", false, "disable meander bend losses")
	noJunctions := flag.Bool("no-junctions", false, "disable T-junction losses")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: oocsim [flags] design.json")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *model, *noBends, *noJunctions); err != nil {
		fmt.Fprintln(os.Stderr, "oocsim:", err)
		os.Exit(1)
	}
}

func run(path, model string, noBends, noJunctions bool) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	design, err := render.ParseJSON(raw)
	if err != nil {
		return err
	}
	opt := sim.Options{
		DisableBendLosses:     noBends,
		DisableJunctionLosses: noJunctions,
	}
	switch model {
	case "exact":
		opt.Model = sim.ModelExact
	case "approx":
		opt.Model = sim.ModelApprox
	default:
		return fmt.Errorf("unknown model %q (exact or approx)", model)
	}
	rep, err := sim.Validate(design, opt)
	if err != nil {
		return err
	}
	fmt.Print(report.FormatFig4(rep))
	fmt.Printf("aggregate: flow dev avg %.2f%% max %.2f%% | perfusion dev avg %.2f%% max %.2f%%\n",
		rep.AvgFlowDeviation*100, rep.MaxFlowDeviation*100,
		rep.AvgPerfDeviation*100, rep.MaxPerfDeviation*100)
	return nil
}
