// Command oocsim validates a generated design file (as written by
// oocgen -json) with the CFD-substitute pipeline: it re-solves the
// chip's channel network under the exact duct-resistance model with
// laminar minor losses and reports per-module flow-rate and perfusion
// deviations from the specification embedded in the file.
//
// The validation is context-driven: Ctrl-C (SIGINT/SIGTERM) or an
// elapsed -timeout budget aborts it cooperatively. Under
// -model numeric a deadline degrades per-channel to the analytic
// exact resistance instead of failing; degraded channels are listed.
//
// Usage:
//
//	oocsim chip.json
//	oocsim -model approx -no-bends -no-junctions chip.json   # self-consistency check
//	oocsim -model numeric -timeout 30s -stats chip.json      # CFD-lite with telemetry
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"ooc/internal/obs"
	"ooc/internal/render"
	"ooc/internal/report"
	"ooc/internal/sim"
)

func main() {
	model := flag.String("model", "exact", "resistance model: exact, approx or numeric")
	scheme := flag.String("scheme", "auto", "Poisson backend for the numeric model: auto, sor or mg")
	noBends := flag.Bool("no-bends", false, "disable meander bend losses")
	noJunctions := flag.Bool("no-junctions", false, "disable T-junction losses")
	timeout := flag.Duration("timeout", 0, "overall deadline for the validation (0 = none)")
	stats := flag.Bool("stats", false, "print solver telemetry after the report")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: oocsim [flags] design.json")
		os.Exit(2)
	}
	// Flag validation happens before any file I/O: a typo'd -model or
	// -scheme is a usage error (exit 2 with the valid spellings), not a
	// late runtime failure after the design was already parsed.
	opt, err := modelOptions(*model, *scheme, *noBends, *noJunctions)
	if err != nil {
		fmt.Fprintln(os.Stderr, "oocsim:", err)
		fmt.Fprintf(os.Stderr, "usage: oocsim [-model {%s}] [-scheme {%s}] [flags] design.json\n", sim.ModelNames, sim.SchemeNames)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var col *obs.Collector
	if *stats {
		col = obs.NewCollector()
		ctx = obs.WithCollector(ctx, col)
	}

	err = run(ctx, flag.Arg(0), opt)
	if col != nil {
		// Telemetry covers whatever ran, including aborted solves.
		fmt.Print(col.Snapshot().Format())
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "oocsim:", err)
		os.Exit(1)
	}
}

// modelOptions resolves the model/scheme flags and loss switches into
// validation options.
func modelOptions(model, scheme string, noBends, noJunctions bool) (sim.Options, error) {
	m, err := sim.ParseModel(model)
	if err != nil {
		return sim.Options{}, err
	}
	s, err := sim.ParseScheme(scheme)
	if err != nil {
		return sim.Options{}, err
	}
	return sim.Options{
		Model:                 m,
		Scheme:                s,
		DisableBendLosses:     noBends,
		DisableJunctionLosses: noJunctions,
	}, nil
}

func run(ctx context.Context, path string, opt sim.Options) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	design, err := render.ParseJSON(raw)
	if err != nil {
		return err
	}
	rep, err := sim.ValidateContext(ctx, design, opt)
	if err != nil {
		return err
	}
	fmt.Print(report.FormatFig4(rep))
	fmt.Printf("aggregate: flow dev avg %.2f%% max %.2f%% | perfusion dev avg %.2f%% max %.2f%%\n",
		rep.AvgFlowDeviation*100, rep.MaxFlowDeviation*100,
		rep.AvgPerfDeviation*100, rep.MaxPerfDeviation*100)
	if len(rep.Degradations) > 0 {
		fmt.Printf("degraded to analytic exact resistance under deadline: %d channels (%s)\n",
			len(rep.Degradations), strings.Join(rep.Degradations, ", "))
	}
	return nil
}
