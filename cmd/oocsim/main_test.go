package main

import (
	"strings"
	"testing"
	"time"

	"ooc/internal/sim"
)

// TestModelFlagValidation: every valid -model spelling resolves to the
// matching sim.Model, and anything else fails with an error that lists
// the valid models — the message main prints before exiting 2.
func TestModelFlagValidation(t *testing.T) {
	cases := []struct {
		model   string
		want    sim.Model
		wantErr bool
	}{
		{model: "exact", want: sim.ModelExact},
		{model: "approx", want: sim.ModelApprox},
		{model: "numeric", want: sim.ModelNumeric},
		{model: "dynamic", want: sim.ModelDynamic},
		{model: "", want: sim.ModelExact}, // flag default semantics
		{model: "bogus", wantErr: true},
		{model: "EXACT", wantErr: true}, // spellings are case-sensitive
		{model: "auto", wantErr: true},  // oocbench-only spelling
	}
	for _, tc := range cases {
		opt, err := modelOptions(tc.model, "auto", true, false)
		if tc.wantErr {
			if err == nil {
				t.Errorf("model %q: expected an error", tc.model)
				continue
			}
			if !strings.Contains(err.Error(), sim.ModelNames) {
				t.Errorf("model %q: error does not list valid models: %v", tc.model, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("model %q: %v", tc.model, err)
			continue
		}
		if opt.Model != tc.want {
			t.Errorf("model %q: got %v want %v", tc.model, opt.Model, tc.want)
		}
		if !opt.DisableBendLosses || opt.DisableJunctionLosses {
			t.Errorf("model %q: loss switches not threaded through: %+v", tc.model, opt)
		}
	}
}

// TestSchemeFlagValidation: every valid -scheme spelling resolves to
// the matching sim.Scheme, and anything else fails with an error that
// lists the valid schemes — the message main prints before exiting 2.
func TestSchemeFlagValidation(t *testing.T) {
	cases := []struct {
		scheme  string
		want    sim.Scheme
		wantErr bool
	}{
		{scheme: "auto", want: sim.SchemeAuto},
		{scheme: "sor", want: sim.SchemeSOR},
		{scheme: "mg", want: sim.SchemeMG},
		{scheme: "", want: sim.SchemeAuto}, // flag default semantics
		{scheme: "bogus", wantErr: true},
		{scheme: "MG", wantErr: true},        // spellings are case-sensitive
		{scheme: "multigrid", wantErr: true}, // canonical short name only
	}
	for _, tc := range cases {
		opt, err := modelOptions("numeric", tc.scheme, false, false)
		if tc.wantErr {
			if err == nil {
				t.Errorf("scheme %q: expected an error", tc.scheme)
				continue
			}
			if !strings.Contains(err.Error(), sim.SchemeNames) {
				t.Errorf("scheme %q: error does not list valid schemes: %v", tc.scheme, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("scheme %q: %v", tc.scheme, err)
			continue
		}
		if opt.Scheme != tc.want {
			t.Errorf("scheme %q: got %v want %v", tc.scheme, opt.Scheme, tc.want)
		}
	}
}

// TestDynamicFlagValidation: the transient-tier flags resolve into
// validated DynamicOptions — malformed profiles and non-positive
// durations are usage errors, and -dose switches species transport on.
func TestDynamicFlagValidation(t *testing.T) {
	def := sim.DefaultDynamicOptions()
	cases := []struct {
		name    string
		dur     time.Duration
		profile string
		dose    float64
		wantErr string
	}{
		{name: "defaults", dur: def.Duration, profile: "constant"},
		{name: "pulse with dose", dur: 2 * time.Second, profile: "pulse:0.5@500ms", dose: 1},
		{name: "ramp", dur: time.Second, profile: "ramp:250ms"},
		{name: "zero duration", dur: 0, profile: "constant", wantErr: "duration"},
		{name: "bad profile", dur: time.Second, profile: "square:1s", wantErr: "profile"},
		{name: "negative dose", dur: time.Second, profile: "constant", dose: -1, wantErr: "dose"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o, err := dynamicOptions(tc.dur, def.MaxStep, def.SampleEvery, tc.profile, tc.dose)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err = %v, want mention of %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if o.Duration != tc.dur {
				t.Errorf("duration %v, want %v", o.Duration, tc.dur)
			}
			if got := o.Species.Enabled; got != (tc.dose > 0) {
				t.Errorf("species enabled = %v with dose %g", got, tc.dose)
			}
		})
	}
}
