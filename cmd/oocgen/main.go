// Command oocgen generates an organ-on-chip design from a
// specification and writes it as JSON and/or SVG.
//
// The specification comes either from a built-in use case (-usecase)
// or from a JSON spec file (-spec). Example spec file:
//
//	{
//	  "name": "my_chip",
//	  "reference": "male",
//	  "organism_mass_kg": 1e-6,
//	  "viscosity_pa_s": 7.2e-4,
//	  "shear_stress_pa": 1.5,
//	  "spacing_m": 1e-3,
//	  "modules": [
//	    {"organ": "lung", "tissue": "layered"},
//	    {"organ": "liver", "tissue": "layered"},
//	    {"name": "tumor", "tissue": "round", "mass_kg": 2e-8, "perfusion": 0.2}
//	  ]
//	}
//
// Generation itself is pure computation, but validation and the flow
// -field solve run iterative solvers: both are context-driven, so
// Ctrl-C (SIGINT/SIGTERM) or an elapsed -timeout budget aborts them
// cooperatively and the process exits nonzero with the cause.
//
// Usage:
//
//	oocgen -usecase male_simple -svg chip.svg -json chip.json
//	oocgen -spec myspec.json -svg chip.svg
//	oocgen -usecase male_simple -timeout 10s -stats
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"ooc"
	"ooc/internal/specio"
	"ooc/internal/usecases"
)

func main() {
	useCase := flag.String("usecase", "", "built-in use case name (male_simple, female_simple, male_gi_tract, male_kidney, generic1..generic4)")
	specPath := flag.String("spec", "", "path to a JSON specification file")
	svgPath := flag.String("svg", "", "write the chip layout as SVG to this path")
	jsonPath := flag.String("json", "", "write the design as JSON to this path")
	dxfPath := flag.String("dxf", "", "write the chip layout as DXF (R12) to this path")
	gdsPath := flag.String("gds", "", "write the chip layout as a GDSII mask stream to this path")
	fieldPath := flag.String("field", "", "solve the depth-averaged flow field and write a velocity heatmap PNG to this path")
	doReview := flag.Bool("review", false, "run the pre-fabrication design review and print findings")
	validate := flag.Bool("validate", true, "validate the design with the CFD-substitute pipeline and print deviations")
	timeout := flag.Duration("timeout", 0, "overall deadline for validation and field solves (0 = none)")
	stats := flag.Bool("stats", false, "print solver telemetry after the run")
	flag.Parse()

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var col *ooc.TelemetryCollector
	if *stats {
		col = ooc.NewTelemetryCollector()
		ctx = ooc.WithTelemetry(ctx, col)
	}

	err := run(ctx, *useCase, *specPath, *svgPath, *jsonPath, *dxfPath, *gdsPath, *fieldPath, *doReview, *validate)
	if col != nil {
		// Telemetry covers whatever ran — including aborted partial
		// solves — so it prints even when the run failed.
		fmt.Print(col.Snapshot().Format())
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "oocgen:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, useCase, specPath, svgPath, jsonPath, dxfPath, gdsPath, fieldPath string, doReview, validate bool) error {
	var spec ooc.Spec
	switch {
	case useCase != "" && specPath != "":
		return fmt.Errorf("use either -usecase or -spec, not both")
	case useCase != "":
		uc, err := usecases.ByName(useCase)
		if err != nil {
			return err
		}
		spec = uc.Build()
	case specPath != "":
		raw, err := os.ReadFile(specPath)
		if err != nil {
			return err
		}
		s, err := specio.Parse(raw)
		if err != nil {
			return err
		}
		spec = s
	default:
		return fmt.Errorf("need -usecase or -spec (try -usecase male_simple)")
	}

	design, err := ooc.Generate(spec)
	if err != nil {
		return err
	}
	fmt.Printf("generated %q: %d modules, %d channels, chip %.1f × %.1f mm, %d iterations\n",
		design.Name, len(design.Modules), len(design.Channels),
		design.Bounds.Width()*1e3, design.Bounds.Height()*1e3, design.Iterations)
	fmt.Printf("pumps: inlet %s, outlet %s, recirculation %s\n",
		design.Pumps.Inlet, design.Pumps.Outlet, design.Pumps.Recirculation)
	for _, m := range design.Modules {
		fmt.Printf("  module %-10s %s × %s, mass %.3g kg, perfusion %.1f%%, flow %s\n",
			m.Name, m.Width, m.Length, m.Mass.Kilograms(), m.Perfusion*100, m.FlowRate)
	}

	if validate {
		rep, err := ooc.ValidateContext(ctx, design, ooc.DefaultValidationOptions())
		if err != nil {
			return err
		}
		fmt.Printf("validation: flow deviation avg %.2f%% max %.2f%%, perfusion deviation avg %.2f%% max %.2f%%\n",
			rep.AvgFlowDeviation*100, rep.MaxFlowDeviation*100,
			rep.AvgPerfDeviation*100, rep.MaxPerfDeviation*100)
	}

	if svgPath != "" {
		if err := os.WriteFile(svgPath, []byte(ooc.RenderSVG(design)), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", svgPath)
	}
	if jsonPath != "" {
		raw, err := ooc.RenderJSON(design)
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, raw, 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", jsonPath)
	}
	if dxfPath != "" {
		if err := os.WriteFile(dxfPath, []byte(ooc.RenderDXF(design)), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", dxfPath)
	}
	if gdsPath != "" {
		if err := os.WriteFile(gdsPath, ooc.RenderGDS(design), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", gdsPath)
	}
	if fieldPath != "" {
		f, err := ooc.SolveFlowFieldContext(ctx, design, ooc.FieldOptions{})
		if err != nil {
			return err
		}
		out, err := os.Create(fieldPath)
		if err != nil {
			return err
		}
		if err := f.RenderPNG(out); err != nil {
			_ = out.Close()
			return err
		}
		if err := out.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (max speed %.3g m/s)\n", fieldPath, f.MaxSpeed)
	}
	if doReview {
		rev, err := ooc.ReviewDesign(design)
		if err != nil {
			return err
		}
		fmt.Printf("design review: %d findings (%d errors, %d warnings), OK=%v\n",
			len(rev.Findings), rev.Count(ooc.ReviewError), rev.Count(ooc.ReviewWarning), rev.OK())
		for _, f := range rev.Findings {
			fmt.Println(" ", f)
		}
	}
	return nil
}
