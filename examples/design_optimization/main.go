// design_optimization explores the designer's free geometric choices
// automatically: the paper fixes "reasonable" defaults (150 µm channel
// height, uniform gaps), but those trade off chip area, pump pressure
// and medium consumption against each other. This example optimizes
// the same four-organ chip for three different objectives under a
// validation-deviation budget, then runs the pre-fabrication design
// review on the winner.
//
// Run with:
//
//	go run ./examples/design_optimization
package main

import (
	"fmt"
	"log"

	"ooc"
)

func spec() ooc.Spec {
	return ooc.Spec{
		Name:         "male_kidney",
		Reference:    ooc.StandardMale(),
		OrganismMass: ooc.Kilograms(1e-6),
		Modules: []ooc.ModuleSpec{
			{Organ: ooc.Lung, Kind: ooc.Layered},
			{Organ: ooc.Liver, Kind: ooc.Layered},
			{Organ: ooc.Kidney, Kind: ooc.Layered},
			{Organ: ooc.Brain, Kind: ooc.Layered},
		},
		Fluid:       ooc.MediumLowViscosity,
		ShearStress: ooc.PascalsShear(1.5),
	}
}

func main() {
	objectives := []ooc.OptimizeObjective{
		ooc.MinimizeArea,
		ooc.MinimizePumpPressure,
		ooc.MinimizeTotalFlow,
	}
	fmt.Printf("%-20s | %10s %8s | %12s %12s %14s\n",
		"objective", "height", "gap", "chip [mm²]", "pump [Pa]", "medium")
	var areaWinner *ooc.OptimizeResult
	for _, obj := range objectives {
		res, err := ooc.Optimize(spec(), ooc.OptimizeOptions{
			Objective:   obj,
			Constraints: ooc.OptimizeConstraints{MaxFlowDeviation: 0.05},
		})
		if err != nil {
			log.Fatalf("%v: %v", obj, err)
		}
		if obj == ooc.MinimizeArea {
			areaWinner = res
		}
		area := res.Best.Bounds.Width() * res.Best.Bounds.Height() * 1e6
		fmt.Printf("%-20s | %10s %8s | %12.0f %12.0f %14s\n",
			obj,
			res.BestSpec.Geometry.ChannelHeight,
			res.BestSpec.Geometry.MinGap,
			area,
			res.BestReport.PumpPressure.Pascals(),
			res.Best.Pumps.Inlet)
	}

	fmt.Printf("\ncandidates evaluated per run: %d (%d feasible for area)\n",
		areaWinner.Evaluated, areaWinner.Feasible)

	// Pre-fabrication review of the area-optimal chip.
	rev, err := ooc.ReviewDesign(areaWinner.Best)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndesign review of the area-optimal chip (%d findings, OK=%v):\n",
		len(rev.Findings), rev.OK())
	for _, f := range rev.Findings {
		if f.Severity != ooc.ReviewInfo {
			fmt.Println(" ", f)
		}
	}
	if rev.Count(ooc.ReviewWarning) == 0 && rev.Count(ooc.ReviewError) == 0 {
		fmt.Println("  all checks passed — ready for fabrication export (SVG/DXF)")
	}
}
