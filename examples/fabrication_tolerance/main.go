// fabrication_tolerance asks how robust an automatically generated
// design is to real-world fabrication: soft-lithography channel
// dimensions vary by a few percent, and resistance scales like h⁻³,
// so height errors dominate. The example runs Monte Carlo fabrication
// studies at several tolerance levels and prints deviation statistics
// and yield — the paper's acceptance criterion ("within the typical
// tolerances applied in microfluidics") turned into a number.
//
// It also compares flow-controlled pumping (the method's output)
// against pressure-controlled pumping at the designer's set pressures.
//
// Run with:
//
//	go run ./examples/fabrication_tolerance
package main

import (
	"fmt"
	"log"

	"ooc"
)

func main() {
	spec := ooc.Spec{
		Name:         "male_kidney",
		Reference:    ooc.StandardMale(),
		OrganismMass: ooc.Kilograms(1e-6),
		Modules: []ooc.ModuleSpec{
			{Organ: ooc.Lung, Kind: ooc.Layered},
			{Organ: ooc.Liver, Kind: ooc.Layered},
			{Organ: ooc.Kidney, Kind: ooc.Layered},
			{Organ: ooc.Brain, Kind: ooc.Layered},
		},
		Fluid:       ooc.MediumLowViscosity,
		ShearStress: ooc.PascalsShear(1.5),
	}
	design, err := ooc.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Monte Carlo fabrication (200 chips per row):")
	fmt.Printf("  %-12s | %10s %10s %10s | %8s %8s\n",
		"tolerance", "mean dev", "P95 dev", "max dev", "yield10%", "yield5%")
	for _, sigma := range []float64{0.01, 0.02, 0.05} {
		rep, err := ooc.AnalyzeTolerance(design, ooc.ToleranceConfig{
			WidthSigma:  sigma,
			HeightSigma: sigma,
			LengthSigma: sigma / 10,
			Samples:     200,
			Seed:        42,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  ±%.0f%% w/h     | %9.2f%% %9.2f%% %9.2f%% | %7.0f%% %7.0f%%\n",
			sigma*100,
			rep.FlowDev.Mean*100, rep.FlowDev.P95*100, rep.FlowDev.Max*100,
			rep.YieldWithin["10%"]*100, rep.YieldWithin["5%"]*100)
	}

	// Pump-mode comparison.
	flowDriven, err := ooc.Validate(design, ooc.DefaultValidationOptions())
	if err != nil {
		log.Fatal(err)
	}
	pressureDriven, err := ooc.ValidatePressureDriven(design, ooc.DefaultValidationOptions())
	if err != nil {
		log.Fatal(err)
	}
	set, err := ooc.DesignPumpPressures(design)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npump operating modes (nominal fabrication):")
	fmt.Printf("  flow-controlled pumps:     max flow deviation %.2f%%\n",
		flowDriven.MaxFlowDeviation*100)
	fmt.Printf("  pressure-controlled pumps: max flow deviation %.2f%% (inlet set %.0f Pa, recirc set %.0f Pa)\n",
		pressureDriven.MaxFlowDeviation*100,
		set.Inlet.Pascals(), set.Recirculation.Pascals())
	fmt.Println("\nflow-controlled pumping — the method's output — is the more robust mode,")
	fmt.Println("which is why the paper's designer emits pump flow rates, not pressures.")
}
