// drug_transport demonstrates what the generated chip is *for*: it
// simulates a drug dose and a cytokine response travelling through the
// circulating fluid of an automatically designed OoC.
//
// Scenario: an orally absorbed compound enters through the GI-tract
// module side (modelled as a bolus into the circulating loop), is
// metabolized by the liver (first-order clearance), and the brain's
// exposure — the quantity a neurotoxicity screen cares about — is
// reported as peak concentration and AUC. In a second run the liver
// secretes a cytokine and the simulation shows the inter-organ
// communication the paper's introduction describes.
//
// Run with:
//
//	go run ./examples/drug_transport
package main

import (
	"fmt"
	"log"

	"ooc"
)

func main() {
	spec := ooc.Spec{
		Name:         "gi_liver_brain",
		Reference:    ooc.StandardMale(),
		OrganismMass: ooc.Kilograms(1e-6),
		Modules: []ooc.ModuleSpec{
			{Organ: ooc.GITract, Kind: ooc.Layered},
			{Organ: ooc.Liver, Kind: ooc.Layered},
			{Organ: ooc.Brain, Kind: ooc.Layered},
		},
		Fluid:       ooc.MediumTypical,
		ShearStress: ooc.PascalsShear(1.5),
	}
	design, err := ooc.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}

	// --- Drug bolus with hepatic clearance -------------------------
	dose, err := ooc.SimulateTransport(design, ooc.TransportConfig{
		Bolus:    1e-9, // mol into the recirculation loop
		Duration: 120,  // seconds
		Kinetics: map[string]ooc.ModuleKinetics{
			"liver": {Clearance: 0.2}, // 1/s, first-order metabolism
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("drug bolus with hepatic clearance:")
	fmt.Printf("  %-9s %12s %10s %14s\n", "module", "peak[mol/m³]", "t_peak[s]", "AUC[mol·s/m³]")
	for _, m := range dose.Modules {
		fmt.Printf("  %-9s %12.3g %10.1f %14.3g\n", m.Name, m.Peak, m.PeakTime, m.AUC)
	}
	fmt.Printf("  mass balance error: %.2g, recovered at outlet (AUC): %.3g\n\n",
		dose.MassBalanceError, dose.OutletAUC)

	// --- Cytokine secretion (inter-organ communication) ------------
	cytokine, err := ooc.SimulateTransport(design, ooc.TransportConfig{
		Duration: 120,
		Kinetics: map[string]ooc.ModuleKinetics{
			"liver": {Secretion: 1e-12}, // mol/s released by the liver
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("liver cytokine secretion — steady exposure of the other organs:")
	for _, m := range cytokine.Modules {
		fmt.Printf("  %-9s steady concentration %.3g mol/m³\n", m.Name, m.Final)
	}
	fmt.Printf("\ncirculating fluid volume: %.2f µL, simulated in %d steps\n",
		cytokine.CirculatingVolume*1e9, cytokine.Steps)
}
