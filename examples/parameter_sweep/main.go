// parameter_sweep explores the design space the way the paper's
// evaluation does: it regenerates the same chip across the published
// viscosity × shear-stress × spacing grid and shows how the design
// responds — pump settings, chip footprint, meander budget and the
// validated deviations. This is the "frequent redesigns" workflow the
// paper's introduction motivates (e.g. switching culture media or
// retargeting the membrane shear stress), compressed from a manual
// design loop into seconds.
//
// Run with:
//
//	go run ./examples/parameter_sweep
package main

import (
	"fmt"
	"log"

	"ooc"
)

func baseSpec() ooc.Spec {
	return ooc.Spec{
		Name:         "sweep",
		Reference:    ooc.StandardMale(),
		OrganismMass: ooc.Kilograms(1e-6),
		Modules: []ooc.ModuleSpec{
			{Organ: ooc.GITract, Kind: ooc.Layered},
			{Organ: ooc.Liver, Kind: ooc.Layered},
			{Organ: ooc.Brain, Kind: ooc.Layered},
		},
		Fluid:       ooc.MediumLowViscosity,
		ShearStress: ooc.PascalsShear(1.5),
	}
}

func main() {
	viscosities := []ooc.Viscosity{ooc.MediumViscosityLow, ooc.MediumViscosityTypical, ooc.MediumViscosityHigh}
	shears := []float64{1.2, 1.5, 2.0}   // Pa (endothelial window)
	spacings := []float64{0.5, 1.0, 1.5} // mm

	fmt.Printf("%-10s %-6s %-8s | %12s %14s %12s | %10s %10s\n",
		"µ [Pa·s]", "τ [Pa]", "sp [mm]", "chip [mm²]", "inlet pump", "recirc", "flow dev", "perf dev")
	for _, mu := range viscosities {
		for _, tau := range shears {
			for _, sp := range spacings {
				spec := baseSpec()
				spec.Fluid.Viscosity = mu
				spec.ShearStress = ooc.PascalsShear(tau)
				spec.Geometry.Spacing = ooc.Millimetres(sp)

				design, err := ooc.Generate(spec)
				if err != nil {
					log.Fatalf("µ=%g τ=%g sp=%g: %v", mu, tau, sp, err)
				}
				rep, err := ooc.Validate(design, ooc.DefaultValidationOptions())
				if err != nil {
					log.Fatalf("µ=%g τ=%g sp=%g: validate: %v", mu, tau, sp, err)
				}
				area := design.Bounds.Width() * design.Bounds.Height() * 1e6 // mm²
				fmt.Printf("%-10.2g %-6.1f %-8.1f | %12.0f %14s %12s | %9.2f%% %9.2f%%\n",
					mu, tau, sp, area,
					design.Pumps.Inlet, design.Pumps.Recirculation,
					rep.AvgFlowDeviation*100, rep.AvgPerfDeviation*100)
			}
		}
	}

	fmt.Println("\nObservations (cf. Sec. IV):")
	fmt.Println("  • higher shear stress τ raises every flow rate proportionally (Eq. 3);")
	fmt.Println("  • higher viscosity µ lowers the flow rates but raises pressure drops;")
	fmt.Println("  • wider spacing grows the chip footprint (meander pitch and gaps).")
}
