// patient_specific models the personalized-medicine scenario from the
// paper's introduction: testing a treatment on a platform carrying
// patient-derived tissue before treating the patient. A resected
// tumor spheroid (a round tissue, Fig. 1b) with measured mass and
// perfusion joins liver and kidney modules — liver for metabolism of
// the compound, kidney to watch for nephrotoxic side effects.
//
// Round tissues drive the chip geometry: the spheroid radius defines
// the module size and the circulating-fluid channel width (4·r), and
// the vascularization limit r ≤ 250 µm is enforced.
//
// Run with:
//
//	go run ./examples/patient_specific
package main

import (
	"fmt"
	"log"
	"os"

	"ooc"
)

func main() {
	// Patient-derived spheroid: 20 µg, moderately perfused. The tumor
	// is not in the reference tables, so mass and perfusion are given
	// explicitly.
	tumor := ooc.ModuleSpec{
		Name:      "tumor",
		Kind:      ooc.Round,
		Mass:      ooc.Kilograms(2e-8),
		Perfusion: 0.25,
	}

	spec := ooc.Spec{
		Name:      "patient_7031",
		Reference: ooc.StandardMale(),
		// The organism scale is anchored on the liver module (Eq. 1):
		// the liver organoid available from the biobank weighs 14 ng.
		AnchorModule: "liver",
		Modules: []ooc.ModuleSpec{
			{Organ: ooc.Liver, Kind: ooc.Layered, Mass: ooc.Kilograms(1.42857e-8)},
			tumor,
			{Organ: ooc.Kidney, Kind: ooc.Layered},
		},
		Fluid:       ooc.MediumTypical,
		ShearStress: ooc.PascalsShear(1.2), // gentler on primary patient cells
	}

	resolved, err := ooc.Derive(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scaled organism mass (Eq. 1, anchored on the liver): %.3g kg\n",
		resolved.OrganismMass.Kilograms())
	for _, m := range resolved.Modules {
		if m.Kind == ooc.Round {
			fmt.Printf("tumor spheroid radius %.1f µm (vascularization limit 250 µm) → channel width %s\n",
				m.Radius.Micrometres(), resolved.ModuleWidth)
		}
	}

	design, err := ooc.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nchip %q: %.1f × %.1f mm\n", design.Name,
		design.Bounds.Width()*1e3, design.Bounds.Height()*1e3)
	for _, m := range design.Modules {
		fmt.Printf("  %-7s (%s) %8s × %-8s perfusion %5.1f%%\n",
			m.Name, m.Kind, m.Width, m.Length, m.Perfusion*100)
	}

	rep, err := ooc.Validate(design, ooc.DefaultValidationOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nvalidated exposure of the patient tissue:")
	for _, m := range rep.Modules {
		fmt.Printf("  %-7s flow %s (dev %.2f%%), shear %.2f Pa, perfusion %.1f%%\n",
			m.Name, m.ActualFlow, m.FlowDeviation*100,
			m.ActualShear.Pascals(), m.ActualPerfusion*100)
	}

	if err := os.WriteFile("patient_specific.svg", []byte(ooc.RenderSVG(design)), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote patient_specific.svg")
}
