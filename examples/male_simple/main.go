// male_simple reproduces the paper's Fig. 4 experiment: generate the
// male_simple chip (lung + liver + brain) at the published operating
// point (µ = 7.2e-4 Pa·s, τ = 1.5 Pa, spacing 1 mm), validate it with
// the CFD-substitute pipeline, print the per-module flow comparison,
// and write the chip layout as SVG and the design as JSON.
//
// Run with:
//
//	go run ./examples/male_simple
package main

import (
	"fmt"
	"log"
	"os"

	"ooc"
)

func main() {
	spec := ooc.Spec{
		Name:         "male_simple",
		Reference:    ooc.StandardMale(),
		OrganismMass: ooc.Kilograms(1e-6),
		Modules: []ooc.ModuleSpec{
			{Organ: ooc.Lung, Kind: ooc.Layered},
			{Organ: ooc.Liver, Kind: ooc.Layered},
			{Organ: ooc.Brain, Kind: ooc.Layered},
		},
		Fluid:       ooc.MediumLowViscosity,
		ShearStress: ooc.PascalsShear(1.5),
		Geometry: ooc.GeometryParams{
			Spacing: ooc.Millimetres(1),
		},
	}

	design, err := ooc.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's intended module flow at this operating point is
	// 7.8125e-9 m³/s in every module channel.
	fmt.Println("intended module flows (Eq. 3):")
	for _, m := range design.Modules {
		fmt.Printf("  %-6s %g m³/s\n", m.Name, m.FlowRate.CubicMetresPerSecond())
	}

	rep, err := ooc.Validate(design, ooc.DefaultValidationOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nvalidation (CFD substitute), cf. Fig. 4:")
	fmt.Printf("  %-6s %14s %14s %8s %10s\n", "module", "intended", "measured", "dev[%]", "perf dev[%]")
	for _, m := range rep.Modules {
		fmt.Printf("  %-6s %14.4g %14.4g %8.2f %10.2f\n",
			m.Name,
			m.SpecFlow.CubicMetresPerSecond(),
			m.ActualFlow.CubicMetresPerSecond(),
			m.FlowDeviation*100, m.PerfusionDeviation*100)
	}
	fmt.Printf("  pump pressure: %.0f Pa\n", rep.PumpPressure.Pascals())

	if err := os.WriteFile("male_simple.svg", []byte(ooc.RenderSVG(design)), 0o644); err != nil {
		log.Fatal(err)
	}
	raw, err := ooc.RenderJSON(design)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile("male_simple.json", raw, 0o644); err != nil {
		log.Fatal(err)
	}

	// The Fig. 4 velocity map: solve the depth-averaged flow field over
	// the rasterized layout and render the speed heatmap.
	fieldSolve, err := ooc.SolveFlowField(design, ooc.FieldOptions{})
	if err != nil {
		log.Fatal(err)
	}
	png, err := os.Create("male_simple_velocity.png")
	if err != nil {
		log.Fatal(err)
	}
	if err := fieldSolve.RenderPNG(png); err != nil {
		log.Fatal(err)
	}
	if err := png.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfield solve: %d channel cells, max speed %.3g m/s\n",
		fieldSolve.ChannelCells, fieldSolve.MaxSpeed)
	fmt.Println("wrote male_simple.svg, male_simple.json and male_simple_velocity.png")
}
