// Quickstart: generate a three-organ chip (lung, liver, brain — the
// paper's male_simple use case) and print the resulting design.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ooc"
)

func main() {
	// The specification (Sec. III-A of the paper): which organs, on
	// which reference organism, at which scale, with which circulating
	// fluid and membrane shear-stress target.
	spec := ooc.Spec{
		Name:         "quickstart",
		Reference:    ooc.StandardMale(),
		OrganismMass: ooc.Kilograms(1e-6), // a 1 mg miniaturized organism
		Modules: []ooc.ModuleSpec{
			{Organ: ooc.Lung, Kind: ooc.Layered},  // barrier tissue for drug uptake
			{Organ: ooc.Liver, Kind: ooc.Layered}, // metabolism
			{Organ: ooc.Brain, Kind: ooc.Layered}, // species-specific target
		},
		Fluid:       ooc.MediumLowViscosity, // culture medium, µ = 7.2e-4 Pa·s
		ShearStress: ooc.PascalsShear(1.5),  // endothelial window is 1–2 Pa
	}

	// Generate runs the whole pipeline: allometric scaling (Eq. 1/2),
	// shear-derived module flows (Eq. 3), perfusion factors (Eq. 4),
	// Kirchhoff flow initialization (Eq. 5), pressure correction,
	// meander insertion and offset correction.
	design, err := ooc.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("chip %q: %.1f × %.1f mm, %d channels, converged in %d iterations\n",
		design.Name, design.Bounds.Width()*1e3, design.Bounds.Height()*1e3,
		len(design.Channels), design.Iterations)
	fmt.Println("\norgan modules:")
	for _, m := range design.Modules {
		fmt.Printf("  %-6s %8s × %-8s  mass %.3g kg  perfusion %5.1f%%  flow %s\n",
			m.Name, m.Width, m.Length, m.Mass.Kilograms(), m.Perfusion*100, m.FlowRate)
	}
	fmt.Println("\npump settings:")
	fmt.Printf("  inlet %s, outlet %s, recirculation %s\n",
		design.Pumps.Inlet, design.Pumps.Outlet, design.Pumps.Recirculation)

	// Validate re-solves the generated geometry under exact duct
	// physics (the CFD substitute) and reports the deviations.
	rep, err := ooc.Validate(design, ooc.DefaultValidationOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nvalidation: flow deviation avg %.2f%%, perfusion deviation avg %.2f%% — within microfluidic tolerances\n",
		rep.AvgFlowDeviation*100, rep.AvgPerfDeviation*100)
}
