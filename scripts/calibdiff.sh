#!/bin/sh
# Calibration-drift gate: re-run the offline fidelity-ladder
# calibration sweep and compare every per-use-case deviation bound
# against the committed artifact (internal/modelsel/CALIB.json by
# default, override with $1). The bounds are bit-deterministic for a
# fixed grid, so any drift means a physics/solver change moved the
# accuracy ladder and the artifact — and the ?error_budget= selections
# derived from it — is stale. Exits nonzero listing every drifted
# cell; regenerate deliberately when the change is intended:
#
#	go run ./cmd/oocbench -calibrate > internal/modelsel/CALIB.json
#
# The tolerance lives in cmd/oocbench (-calib-tol) and only absorbs
# cross-platform floating point.
set -eu

cd "$(dirname "$0")/.."

BASELINE="${1:-internal/modelsel/CALIB.json}"
exec go run ./cmd/oocbench -calibrate -diff "$BASELINE"
