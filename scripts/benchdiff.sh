#!/bin/sh
# Benchmark-regression gate: evaluate the paper grid under the numeric
# model and compare accuracy, wall clock, and solver iteration counts
# against the committed baseline document (BENCH_5.json by default,
# override with $1). Exits nonzero and lists every violation when the
# fresh run regresses. Tolerances live in cmd/oocbench
# (-diff-acc-tol, -diff-wall-tol, -diff-iter-tol); accuracy cells are
# bit-deterministic for a fixed model/scheme/grid, so the default band
# only absorbs cross-platform floating point.
set -eu

cd "$(dirname "$0")/.."

BASELINE="${1:-BENCH_5.json}"
if ! go run ./cmd/oocbench -json -paper-grid -model numeric -diff "$BASELINE"; then
    # Name the baseline that was actually compared, not a hardcoded
    # default — a caller diffing against an alternate document must
    # regenerate that document, not BENCH_5.json.
    echo "benchdiff.sh: regenerate deliberately with:" >&2
    echo "    go run ./cmd/oocbench -json -paper-grid -model numeric > $BASELINE" >&2
    exit 1
fi
