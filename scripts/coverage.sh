#!/bin/sh
# Coverage gate: run the full test suite with statement coverage and
# fail when the total drops below the checked-in floor. The floor is
# deliberately a few points under the measured value (79.7% when this
# gate landed), so it trips on real coverage erosion — a new untested
# subsystem — without flaking on small refactors. Raise it as coverage
# grows; never lower it to make a PR pass.
set -eu

cd "$(dirname "$0")/.."

FLOOR=75.0

WORK=$(mktemp -d "${TMPDIR:-/tmp}/ooc-cover.XXXXXX")
trap 'rm -rf "$WORK"' EXIT INT TERM

go test -count=1 -coverprofile="$WORK/cover.out" ./...
TOTAL=$(go tool cover -func="$WORK/cover.out" | awk '/^total:/ { sub(/%/, "", $NF); print $NF }')
[ -n "$TOTAL" ] || {
    echo "coverage.sh: could not extract the total from the profile" >&2
    exit 1
}
echo "coverage.sh: total statement coverage ${TOTAL}% (floor ${FLOOR}%)"
awk -v total="$TOTAL" -v floor="$FLOOR" 'BEGIN { exit (total + 0 < floor + 0) ? 1 : 0 }' || {
    echo "coverage.sh: total coverage ${TOTAL}% is below the ${FLOOR}% floor" >&2
    exit 1
}
