#!/bin/sh
# Coverage gate: run the full test suite with statement coverage and
# fail when the total drops below the checked-in floor. The floor is
# deliberately a few points under the measured value (80.4% when last
# raised), so it trips on real coverage erosion — a new untested
# subsystem — without flaking on small refactors. Raise it as coverage
# grows; never lower it to make a PR pass.
#
# Set COVER_PROFILE to keep the profile at a known path (CI uploads it
# as an artifact on failure); by default it lives in a private mktemp
# directory that is removed on exit.
set -eu

cd "$(dirname "$0")/.."

FLOOR=77.0

if [ -n "${COVER_PROFILE:-}" ]; then
    PROFILE=$COVER_PROFILE
else
    WORK=$(mktemp -d "${TMPDIR:-/tmp}/ooc-cover.XXXXXX")
    trap 'rm -rf "$WORK"' EXIT INT TERM
    PROFILE="$WORK/cover.out"
fi

go test -count=1 -coverprofile="$PROFILE" ./...
TOTAL=$(go tool cover -func="$PROFILE" | awk '/^total:/ { sub(/%/, "", $NF); print $NF }')
[ -n "$TOTAL" ] || {
    echo "coverage.sh: could not extract the total from the profile" >&2
    exit 1
}
echo "coverage.sh: total statement coverage ${TOTAL}% (floor ${FLOOR}%)"
awk -v total="$TOTAL" -v floor="$FLOOR" 'BEGIN { exit (total + 0 < floor + 0) ? 1 : 0 }' || {
    echo "coverage.sh: total coverage ${TOTAL}% is below the ${FLOOR}% floor" >&2
    exit 1
}
