#!/bin/sh
# Extended verification: build, vet, race-enabled tests, and the
# repo's own domain-aware static analysis (ooclint). CI and local
# pre-merge runs should both go through this script.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test -race ./...
go run ./cmd/ooclint ./...

# Smoke-run the headline benchmarks once (-benchtime=1x): catches
# bit-rot in the parallel evaluation path and the cross-section cache
# without paying for a full measurement run.
go test -run '^$' -bench 'BenchmarkTableIParallel|BenchmarkCrossSectionCached' -benchtime=1x .

# Cancellation smoke: an already-expired deadline must abort the grid
# evaluation promptly (cooperative ctx checks in every solver loop),
# exit nonzero, and say why. GOTRACEBACK=all would dump goroutines on
# a deadlock; `timeout` turns a hang (leaked worker blocking exit)
# into a failure.
go build -o /tmp/oocbench-smoke ./cmd/oocbench
if out=$(timeout 30 env GOTRACEBACK=all /tmp/oocbench-smoke -timeout 1ms 2>&1); then
    echo "oocbench -timeout 1ms should have exited nonzero" >&2
    exit 1
fi
echo "$out" | grep -q "deadline" || {
    echo "oocbench -timeout 1ms did not mention the deadline:" >&2
    echo "$out" >&2
    exit 1
}
rm -f /tmp/oocbench-smoke

# Telemetry smoke: -stats on the Fig. 4 instance must report cache
# traffic with a positive hit rate (same-aspect channels share one
# normalized cross-section solve).
go run ./cmd/oocbench -fig4 -stats | grep -q "cross-section cache:" || {
    echo "oocbench -stats did not report cache telemetry" >&2
    exit 1
}

# Daemon smoke: oocd on an ephemeral port must answer /healthz, solve
# one /v1/design, show the request in /metrics (all probed by
# oocload -smoke, no curl needed), and drain cleanly within 2s of
# SIGTERM. `timeout` turns a wedged drain into a failure.
go build -o /tmp/oocd-smoke ./cmd/oocd
go build -o /tmp/oocload-smoke ./cmd/oocload
/tmp/oocd-smoke -addr 127.0.0.1:0 > /tmp/oocd-smoke.out 2>&1 &
OOCD_PID=$!
ADDR=""
for _ in $(seq 1 50); do
    ADDR=$(sed -n 's/^oocd: listening on //p' /tmp/oocd-smoke.out)
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || {
    echo "oocd never reported its listen address" >&2
    cat /tmp/oocd-smoke.out >&2
    kill "$OOCD_PID" 2>/dev/null || true
    exit 1
}
/tmp/oocload-smoke -url "http://$ADDR" -smoke || {
    echo "oocd smoke probe failed" >&2
    kill "$OOCD_PID" 2>/dev/null || true
    exit 1
}
kill -TERM "$OOCD_PID"
( sleep 2; kill -KILL "$OOCD_PID" 2>/dev/null ) &
KILLER_PID=$!
wait "$OOCD_PID" || {
    echo "oocd did not exit cleanly within 2s of SIGTERM" >&2
    exit 1
}
kill "$KILLER_PID" 2>/dev/null || true
rm -f /tmp/oocd-smoke /tmp/oocload-smoke /tmp/oocd-smoke.out
