#!/bin/sh
# Extended verification: formatting/tidy hygiene, build, vet,
# race-enabled tests, and the repo's own domain-aware static analysis
# (ooclint). CI and local pre-merge runs should both go through this
# script.
#
# Every artifact (smoke binaries, daemon logs) lives in a private
# mktemp directory, so concurrent runs — two CI jobs on one runner, a
# local run racing CI — never collide; the daemon smoke binds an
# ephemeral port for the same reason. Each step is timed and a summary
# is printed at the end, so slow steps are visible at a glance.
set -eu

cd "$(dirname "$0")/.."

WORK=$(mktemp -d "${TMPDIR:-/tmp}/ooc-check.XXXXXX")
TIMINGS="$WORK/timings"
trap 'rm -rf "$WORK"' EXIT INT TERM

step() {
    _name=$1
    shift
    echo "==> $_name"
    _t0=$(date +%s)
    "$@"
    _t1=$(date +%s)
    printf '  %-22s %4ds\n' "$_name" "$((_t1 - _t0))" >> "$TIMINGS"
}

# Hygiene: the tree must be gofmt-clean (testdata is excluded — the
# analyzer fixtures pin exact source positions) and go.mod/go.sum must
# already be tidy. Both checks print the offending files/diff, so a
# failure is immediately actionable.
hygiene() {
    _unformatted=$(gofmt -l . | grep -v '/testdata/' || true)
    if [ -n "$_unformatted" ]; then
        echo "gofmt: the following files need formatting (gofmt -w):" >&2
        echo "$_unformatted" >&2
        return 1
    fi
    go mod tidy -diff || {
        echo "go.mod/go.sum are not tidy — run: go mod tidy" >&2
        return 1
    }
}
step hygiene hygiene

step build go build ./...
step vet go vet ./...
step test go test -race ./...
step ooclint go run ./cmd/ooclint ./...

# Smoke-run the headline benchmarks once (-benchtime=1x): catches
# bit-rot in the parallel evaluation path and the cross-section cache
# without paying for a full measurement run.
bench_smoke() {
    go test -run '^$' -bench 'BenchmarkTableIParallel|BenchmarkCrossSectionCached' -benchtime=1x .
}
step bench-smoke bench_smoke

# Cancellation smoke: an already-expired deadline must abort the grid
# evaluation promptly (cooperative ctx checks in every solver loop),
# exit nonzero, and say why. GOTRACEBACK=all would dump goroutines on
# a deadlock; `timeout` turns a hang (leaked worker blocking exit)
# into a failure.
cancel_smoke() {
    go build -o "$WORK/oocbench" ./cmd/oocbench
    if out=$(timeout 30 env GOTRACEBACK=all "$WORK/oocbench" -timeout 1ms 2>&1); then
        echo "oocbench -timeout 1ms should have exited nonzero" >&2
        return 1
    fi
    echo "$out" | grep -q "deadline" || {
        echo "oocbench -timeout 1ms did not mention the deadline:" >&2
        echo "$out" >&2
        return 1
    }
}
step cancel-smoke cancel_smoke

# Scheme smoke: an unknown -scheme is a usage error (exit 2, valid
# spellings listed), and a forced-multigrid telemetry run must report
# per-level multigrid stats.
scheme_smoke() {
    if out=$("$WORK/oocbench" -scheme spectral -fig4 2>&1); then
        echo "oocbench -scheme spectral should have exited nonzero" >&2
        return 1
    fi
    echo "$out" | grep -q "valid schemes" || {
        echo "oocbench -scheme error did not list the valid schemes:" >&2
        echo "$out" >&2
        return 1
    }
    "$WORK/oocbench" -fig4 -stats -model numeric -scheme mg | grep -q "mg levels:" || {
        echo "oocbench -scheme mg -stats did not report multigrid level telemetry" >&2
        return 1
    }
}
step scheme-smoke scheme_smoke

# Telemetry smoke: -stats on the Fig. 4 instance must report cache
# traffic with a positive hit rate (same-aspect channels share one
# normalized cross-section solve).
stats_smoke() {
    "$WORK/oocbench" -fig4 -stats | grep -q "cross-section cache:" || {
        echo "oocbench -stats did not report cache telemetry" >&2
        return 1
    }
}
step stats-smoke stats_smoke

# start_oocd <logfile> [oocd flags...]: boot the daemon, wait for its
# listen line, and export OOCD_PID/ADDR. stop_oocd drains it with
# SIGTERM and fails if it has not exited within 2s.
start_oocd() {
    _log=$1
    shift
    "$WORK/oocd" "$@" > "$_log" 2>&1 &
    OOCD_PID=$!
    ADDR=""
    for _ in $(seq 1 50); do
        ADDR=$(sed -n 's/^oocd: listening on //p' "$_log")
        [ -n "$ADDR" ] && break
        sleep 0.1
    done
    [ -n "$ADDR" ] || {
        echo "oocd never reported its listen address" >&2
        cat "$_log" >&2
        kill "$OOCD_PID" 2>/dev/null || true
        return 1
    }
}

stop_oocd() {
    kill -TERM "$OOCD_PID"
    ( sleep 2; kill -KILL "$OOCD_PID" 2>/dev/null ) &
    KILLER_PID=$!
    wait "$OOCD_PID" || {
        echo "oocd did not exit cleanly within 2s of SIGTERM" >&2
        return 1
    }
    kill "$KILLER_PID" 2>/dev/null || true
}

# Daemon smoke: oocd on an ephemeral port must answer /healthz, solve
# one /v1/design, show the request in /metrics (all probed by
# oocload -smoke, no curl needed), and drain cleanly within 2s of
# SIGTERM. `timeout` turns a wedged drain into a failure.
oocd_smoke() {
    go build -o "$WORK/oocd" ./cmd/oocd
    go build -o "$WORK/oocload" ./cmd/oocload
    start_oocd "$WORK/oocd.out" -addr 127.0.0.1:0 || return 1
    "$WORK/oocload" -url "http://$ADDR" -smoke || {
        echo "oocd smoke probe failed" >&2
        kill "$OOCD_PID" 2>/dev/null || true
        return 1
    }
    # Jobs smoke: submit a successive-halving search job against the
    # same daemon, poll it to completion, and assert it found a
    # feasible best with fewer full-fidelity evaluations than the
    # exhaustive grid pays.
    timeout 120 "$WORK/oocload" -url "http://$ADDR" -jobs || {
        echo "oocd jobs probe failed" >&2
        kill "$OOCD_PID" 2>/dev/null || true
        return 1
    }
    stop_oocd
}
step oocd-smoke oocd_smoke

# Budget smoke: accuracy-budgeted model auto-selection end to end. An
# ?error_budget= request must select a non-numeric rung from the
# embedded calibration table (1% comfortably admits the approx rung),
# echo it in X-OOC-Model-Selected and the report body, and an
# identical repeat must be a response-cache hit carrying the same
# header. An unmeetable budget must be a 400 naming the tightest
# achievable rung, and an explicit ?model= must win over the budget.
# All probed by oocload -budget-probe, no curl needed.
budget_smoke() {
    start_oocd "$WORK/budget-oocd.out" -addr 127.0.0.1:0 || return 1
    timeout 60 "$WORK/oocload" -url "http://$ADDR" -budget-probe || {
        echo "oocd budget probe failed" >&2
        kill "$OOCD_PID" 2>/dev/null || true
        return 1
    }
    stop_oocd
}
step budget-smoke budget_smoke

# Dynamic smoke: the transient tier end to end. A pulsatile dosed
# oocsim run on the Fig. 4 chip must saturate every organ at the dose
# (pinned final concentrations — the t→∞ steady state), and the daemon
# must reject a simulated span that cannot fit the request's deadline
# budget with a clean 400 before burning any solve time.
dynamic_smoke() {
    go build -o "$WORK/oocgen" ./cmd/oocgen
    go build -o "$WORK/oocsim" ./cmd/oocsim
    "$WORK/oocgen" -usecase male_simple -json "$WORK/chip.json" -validate=false || return 1
    "$WORK/oocsim" -model dynamic -duration 4s -pump-profile pulse:0.5@500ms -dose 1 \
        "$WORK/chip.json" > "$WORK/dynamic.out" || {
        echo "oocsim -model dynamic failed" >&2
        cat "$WORK/dynamic.out" >&2
        return 1
    }
    grep -q "final concentrations: lung=1.000 liver=1.000 brain=1.000" "$WORK/dynamic.out" || {
        echo "dynamic run did not saturate the organ chain at the dose:" >&2
        cat "$WORK/dynamic.out" >&2
        return 1
    }
    grep -q "arrivals: lung=" "$WORK/dynamic.out" || {
        echo "dynamic run reported no arrival times" >&2
        return 1
    }
    # The over-budget rejection (and one good transient request) over
    # HTTP, via the oocload probe against a fresh daemon.
    start_oocd "$WORK/dyn-oocd.out" -addr 127.0.0.1:0 || return 1
    timeout 60 "$WORK/oocload" -url "http://$ADDR" -dynamic || {
        echo "oocd dynamic probe failed" >&2
        kill "$OOCD_PID" 2>/dev/null || true
        return 1
    }
    stop_oocd
}
step dynamic-smoke dynamic_smoke

# Warm-boot smoke: a daemon killed and restarted with -cache-snapshot
# must serve a previously-seen spec straight from the restored cache —
# the first request after restart is a response-cache hit, with zero
# misses and zero solver iterations, all pinned through /metrics. A
# corrupt snapshot must be rejected with a clear message while the
# daemon still starts (cold) and serves.
snapshot_smoke() {
    SNAP="$WORK/cache.oocsnap"

    # Populate: one numeric validate (exercises the solver), drain on
    # SIGTERM persists the snapshot.
    start_oocd "$WORK/snap1.out" -addr 127.0.0.1:0 -cache-snapshot "$SNAP" || return 1
    "$WORK/oocload" -url "http://$ADDR" -n 1 -c 1 -endpoint validate -model numeric || {
        echo "populate request failed" >&2
        kill "$OOCD_PID" 2>/dev/null || true
        return 1
    }
    stop_oocd || return 1
    [ -f "$SNAP" ] || {
        echo "oocd drain did not persist $SNAP" >&2
        cat "$WORK/snap1.out" >&2
        return 1
    }

    # Warm restart: the same request must be a hit without solving.
    start_oocd "$WORK/snap2.out" -addr 127.0.0.1:0 -cache-snapshot "$SNAP" || return 1
    grep -q "restored" "$WORK/snap2.out" || {
        echo "warm boot did not report a restored snapshot:" >&2
        cat "$WORK/snap2.out" >&2
        kill "$OOCD_PID" 2>/dev/null || true
        return 1
    }
    "$WORK/oocload" -url "http://$ADDR" -n 1 -c 1 -endpoint validate -model numeric || {
        echo "warm request failed" >&2
        kill "$OOCD_PID" 2>/dev/null || true
        return 1
    }
    "$WORK/oocload" -url "http://$ADDR" -metrics > "$WORK/snap-metrics.txt" || {
        echo "metrics fetch failed" >&2
        kill "$OOCD_PID" 2>/dev/null || true
        return 1
    }
    # Counters materialize on first increment, so a warm daemon that
    # never missed and never solved must show hits == 1 and *no*
    # misses or solver-iteration lines at all.
    if ! grep -q "^ooc_response_cache_hits_total 1$" "$WORK/snap-metrics.txt" \
        || grep -q "^ooc_response_cache_misses_total" "$WORK/snap-metrics.txt" \
        || grep -q "^ooc_solver_iterations_total" "$WORK/snap-metrics.txt"; then
        echo "warm boot did not serve the request from the restored cache:" >&2
        grep "cache\|solver" "$WORK/snap-metrics.txt" >&2 || true
        kill "$OOCD_PID" 2>/dev/null || true
        return 1
    fi
    stop_oocd || return 1

    # A corrupt snapshot is rejected loudly and the daemon starts cold.
    printf 'definitely not a snapshot' > "$SNAP"
    start_oocd "$WORK/snap3.out" -addr 127.0.0.1:0 -cache-snapshot "$SNAP" -snapshot-interval 0 || return 1
    grep -q "rejected" "$WORK/snap3.out" && grep -q "starting cold" "$WORK/snap3.out" || {
        echo "corrupt snapshot was not rejected with a clear message:" >&2
        cat "$WORK/snap3.out" >&2
        kill "$OOCD_PID" 2>/dev/null || true
        return 1
    }
    "$WORK/oocload" -url "http://$ADDR" -smoke || {
        echo "daemon with rejected snapshot did not serve" >&2
        kill "$OOCD_PID" 2>/dev/null || true
        return 1
    }
    stop_oocd
}
step snapshot-smoke snapshot_smoke

echo "== check.sh step timings =="
cat "$TIMINGS"
echo "check.sh: all steps passed"
