#!/bin/sh
# Extended verification: build, vet, race-enabled tests, and the
# repo's own domain-aware static analysis (ooclint). CI and local
# pre-merge runs should both go through this script.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test -race ./...
go run ./cmd/ooclint ./...

# Smoke-run the headline benchmarks once (-benchtime=1x): catches
# bit-rot in the parallel evaluation path and the cross-section cache
# without paying for a full measurement run.
go test -run '^$' -bench 'BenchmarkTableIParallel|BenchmarkCrossSectionCached' -benchtime=1x .

# Cancellation smoke: an already-expired deadline must abort the grid
# evaluation promptly (cooperative ctx checks in every solver loop),
# exit nonzero, and say why. GOTRACEBACK=all would dump goroutines on
# a deadlock; `timeout` turns a hang (leaked worker blocking exit)
# into a failure.
go build -o /tmp/oocbench-smoke ./cmd/oocbench
if out=$(timeout 30 env GOTRACEBACK=all /tmp/oocbench-smoke -timeout 1ms 2>&1); then
    echo "oocbench -timeout 1ms should have exited nonzero" >&2
    exit 1
fi
echo "$out" | grep -q "deadline" || {
    echo "oocbench -timeout 1ms did not mention the deadline:" >&2
    echo "$out" >&2
    exit 1
}
rm -f /tmp/oocbench-smoke

# Telemetry smoke: -stats on the Fig. 4 instance must report cache
# traffic with a positive hit rate (same-aspect channels share one
# normalized cross-section solve).
go run ./cmd/oocbench -fig4 -stats | grep -q "cross-section cache:" || {
    echo "oocbench -stats did not report cache telemetry" >&2
    exit 1
}
