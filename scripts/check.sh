#!/bin/sh
# Extended verification: build, vet, race-enabled tests, and the
# repo's own domain-aware static analysis (ooclint). CI and local
# pre-merge runs should both go through this script.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test -race ./...
go run ./cmd/ooclint ./...

# Smoke-run the headline benchmarks once (-benchtime=1x): catches
# bit-rot in the parallel evaluation path and the cross-section cache
# without paying for a full measurement run.
go test -run '^$' -bench 'BenchmarkTableIParallel|BenchmarkCrossSectionCached' -benchtime=1x .
