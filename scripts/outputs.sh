#!/usr/bin/env bash
# Regenerates the test/bench transcripts that used to be tracked in
# git (they are machine-dependent, so they live in .gitignore now):
#
#   test_output.txt   go test ./... transcript
#   bench_output.txt  top-level benchmark suite transcript
#
# Usage: ./scripts/outputs.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go test ./... > test_output.txt"
go test ./... | tee test_output.txt

echo "==> go test -bench . -benchmem -run ^$ . > bench_output.txt"
go test -bench . -benchmem -run '^$' . | tee bench_output.txt

echo "==> wrote test_output.txt and bench_output.txt"
